module T = Hdd_obs.Trace
module Pstore = Hdd_mvstore.Pstore
module P = Hdd_core.Partition
module TW = Hdd_core.Timewall

type op = Read of Granule.t | Write of Granule.t * int

type desc = {
  d_id : Txn.id;
  d_kind : [ `Update of int | `Read_only ];
  d_ops : op list;
  d_abort : bool;
}

type config = {
  workers : int;
  traced : bool;
  trace_capacity : int;
  mailbox_capacity : int;
  wall_poll_s : float;
  publish_every : int;
}

let default_config ~workers =
  { workers;
    traced = true;
    trace_capacity = 1 lsl 16;
    mailbox_capacity = 64;
    wall_poll_s = 100e-6;
    publish_every = 8 }

type stats = {
  committed : int;
  aborted : int;
  reads_a : int;
  reads_b : int;
  reads_c : int;
  writes : int;
  publications : int;
  wall_releases : int;
  wall_lag_sum : int;
  wall_lag_max : int;
  repartitions : int;
  escalations : int;
}

type run = {
  records : T.record list;
  outcomes : (Txn.id * bool) list;
  stats : stats;
}

(* --- shared state --- *)

(* An owner's activity publication: a frozen registry view, the
   global-clock value read at capture, and the owner's quiescence
   summary.  The snapshot answers I_old and C_late exactly for
   arguments <= upto: every transaction of the owner's classes with a
   smaller initiation was ticked, registered and (if finished)
   finalized on the owner's own thread before the capture.

   [p_q] is a full per-class vector: [p_q.(c)] is I_old^c(upto) for
   classes the publisher owned at capture and [max_int] elsewhere, and
   [p_qmin] is the minimum over owned classes — the per-worker
   quiescence summary the coordinator folds in O(workers) instead of
   rescanning every class's history per release attempt (DESIGN.md
   §16).  A claim [p_q.(c) = v] means every class-c transaction with a
   smaller initiation has finished; after an ownership migration the
   coordinator folds the minimum over all workers, so a past owner's
   stale-but-true claim only tightens the bound and the current
   owner's barrier republication caps it correctly. *)
type pub = {
  p_snap : Registry.snapshot;
  p_upto : Time.t;
  p_q : Time.t array;
  p_qmin : Time.t;
}

type shared = {
  clock : Gclock.t;
  partition : P.t;
  workers : int;
  nseg : int;
  publish_every : int;
  stores : Pstore.view Atomic.t array;  (* per segment, set by its owner *)
  (* the wait-free cross-read service: per-class activity boards for
     I_old, per-segment version rings for the committed-but-unpublished
     version tail — what lets batched publication coexist with
     publication-freshness-hungry Protocol A reads (DESIGN.md §16) *)
  acts : Actboard.t;
  rings : Vring.t array;  (* per segment, appended by its owner *)
  (* owner faces of the per-segment packed stores.  Only the current
     owner of a segment's class touches its entry, and ownership only
     changes at a repartition barrier with every worker parked, so the
     handoff is ordered by the park/ack atomics — migrating a class
     transfers the live store without copying a byte. *)
  seg_stores : Pstore.t array;
  pubs : pub Atomic.t array;  (* per worker *)
  repub : bool Atomic.t array;  (* per worker: republication requests *)
  wall : Epochwall.t;
  (* --- dynamic decomposition (DESIGN.md §17) --- *)
  owner_map : int array Atomic.t;  (* class -> owning worker *)
  epoch : int Atomic.t;  (* partition epoch; bumped per repartition *)
  park : bool Atomic.t;  (* barrier request: quiesce between txns *)
  parked : bool Atomic.t array;  (* per worker: quiescent and published *)
  gone : bool Atomic.t array;  (* per worker: exited (counts as parked) *)
  gen : int Atomic.t;  (* barrier generation, bumped at each map swap *)
  acked : int Atomic.t array;  (* last gen each worker republished under *)
  stop : bool Atomic.t;  (* coordinator shutdown *)
  halt : bool Atomic.t;  (* timed mode: worker deadline *)
  (* --- hybrid CC (DESIGN.md §18) --- *)
  modes : int array Atomic.t;
  (* per-class CC mode: 0 = plain HDD (versions stamped with the
     initiation), 1 = escalated (versions stamped with a commit tick).
     Swapped only behind the same park barrier as the owner map, so a
     transaction always runs start to finish under one mode. *)
  esc_seq : int Atomic.t;  (* escalation sequence, bumped per mode swap *)
  class_commits : int array;
  (* cumulative commits per class, written by the class's owner between
     its own transactions and read racily by the coordinator's adaptive
     controller — a monotone heuristic signal, not a synchronized one *)
}

let owner sh class_id = Array.unsafe_get (Atomic.get sh.owner_map) class_id

type counters = {
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_reads_a : int;
  mutable n_reads_b : int;
  mutable n_reads_c : int;
  mutable n_writes : int;
  mutable n_pubs : int;
}

let fresh_counters () =
  { n_committed = 0; n_aborted = 0; n_reads_a = 0; n_reads_b = 0;
    n_reads_c = 0; n_writes = 0; n_pubs = 0 }

type wctx = {
  sh : shared;
  me : int;
  registry : Registry.t;
  mutable own_classes : int array;  (* refreshed at repartition barriers *)
  mutable my_gen : int;  (* last barrier generation observed *)
  trace : T.t option;
  c : counters;
  mutable outcomes : (Txn.id * bool) list;
  keep_outcomes : bool;
  mutable since_pub : int;  (* finished transactions since last publication *)
  mutable last_pruned_m : Time.t;
  (* write buffer, reused across transactions: one pending write per
     key (ts = init), flushed into the packed store on commit *)
  mutable wb_keys : int array;
  mutable wb_vals : int array;
  mutable wb_len : int;
  (* scratch for activity-board reads: [state; a_init; i1; e1; i2; e2] *)
  ab : int array;
  (* commit latencies, timed mode; flat float array, not a list *)
  mutable lat : float array;
  mutable lat_n : int;
  timed : bool;
}

(* Publication: store views first, activity second — any window the
   published snapshot exposes must already have its versions readable.
   The clock is read before the capture so [upto] never claims more
   than the snapshot holds.  Registry history below the released wall
   is pruned here, bounding snapshot cost by the active window rather
   than the whole run. *)
let publish_upto w upto =
  let sh = w.sh in
  Atomic.set sh.repub.(w.me) false;
  let wall_m = (Epochwall.read sh.wall).TW.m in
  if wall_m > w.last_pruned_m then begin
    w.last_pruned_m <- wall_m;
    Registry.prune w.registry ~upto:(wall_m - 1)
  end;
  let own = w.own_classes in
  for i = 0 to Array.length own - 1 do
    let seg = Array.unsafe_get own i in
    if Pstore.dirty_count sh.seg_stores.(seg) > 0 then
      Atomic.set sh.stores.(seg) (Pstore.publish sh.seg_stores.(seg))
  done;
  let q = Array.make sh.nseg max_int in
  for i = 0 to Array.length own - 1 do
    let c = Array.unsafe_get own i in
    q.(c) <- Registry.i_old w.registry ~class_id:c ~at:upto
  done;
  let qmin = Array.fold_left Time.min max_int q in
  Atomic.set sh.pubs.(w.me)
    { p_snap = Registry.snapshot w.registry; p_upto = upto; p_q = q;
      p_qmin = qmin };
  w.since_pub <- 0;
  w.c.n_pubs <- w.c.n_pubs + 1

let publish_pub w = publish_upto w (Gclock.now w.sh.clock)

(* A worker with no work left will register nothing ever again, so its
   final activity snapshot answers exactly for every argument: publish
   it with unbounded coverage, or waiters on this owner would spin
   forever once it exits. *)
let publish_final w = publish_upto w max_int

(* Serve a republication request aimed at this worker.  Requests come
   from waiters mid-cross-read and from a stuck coordinator; serving
   them between transactions is what lets batched publication keep the
   per-commit liveness of PR 5's publish-per-commit scheme. *)
let service_repub w =
  if Atomic.get w.sh.repub.(w.me) then publish_pub w

let own_classes_of_map map me =
  let n = ref 0 in
  Array.iter (fun o -> if o = me then incr n) map;
  let own = Array.make !n 0 in
  let j = ref 0 in
  Array.iteri
    (fun c o ->
      if o = me then begin
        own.(!j) <- c;
        incr j
      end)
    map;
  own

let refresh_own w =
  w.own_classes <- own_classes_of_map (Atomic.get w.sh.owner_map) w.me

(* Catch up with a repartition: recompute owned classes from the swapped
   map, republish under the new assignment (clearing any claim about a
   class that just migrated away and establishing the baseline claim for
   one that migrated in), and acknowledge the generation.  The
   coordinator holds every worker parked until all live workers have
   acknowledged, so no publication made under the old map can outlive
   the barrier. *)
let observe_gen w =
  let g = Atomic.get w.sh.gen in
  if g <> w.my_gen then begin
    refresh_own w;
    publish_pub w;
    w.my_gen <- g;
    Atomic.set w.sh.acked.(w.me) g
  end

(* The repartition barrier, worker side.  Called between transactions
   only: a parked worker is quiescent with everything published.  While
   parked it keeps serving republication requests (a waiter mid-cross-
   read on another worker must not deadlock against the barrier).  The
   parked flag is owned by this worker alone — set on entry, cleared on
   exit — and the coordinator waits for every flag to drop before it
   considers a barrier finished, so a flag it reads as set always means
   "currently quiescent", never a leftover from the previous barrier. *)
let check_park w =
  if Atomic.get w.sh.park then begin
    publish_pub w;
    Atomic.set w.sh.parked.(w.me) true;
    while Atomic.get w.sh.park do
      observe_gen w;
      service_repub w;
      Domain.cpu_relax ()
    done;
    Atomic.set w.sh.parked.(w.me) false
  end;
  observe_gen w

(* Wait for the owner of a class to have published activity covering
   argument [m].  The waiter posts a republication request to the owner
   and keeps serving requests aimed at itself: two workers awaiting
   each other mid-transaction unblock each other (a publication is
   valid at any instant — the current transaction simply shows as
   active). *)
let rec await_owner w ow m n =
  let pub = Atomic.get w.sh.pubs.(ow) in
  if pub.p_upto >= m then pub
  else begin
    Atomic.set w.sh.repub.(ow) true;
    service_repub w;
    (* back off once the owner is clearly descheduled (oversubscribed
       cores): spinning hot starves the very domain we wait for *)
    if n < 64 then Domain.cpu_relax () else Unix.sleepf 20e-6;
    await_owner w ow m (n + 1)
  end

(* Snapshot path for one I_old step: wait until the owner's published
   upto covers the argument — exact because I_old(a) is fixed once the
   clock passes [a]. *)
let slow_i_old w cls at =
  let pub = await_owner w (owner w.sh cls) at 0 in
  Registry.snap_i_old pub.p_snap ~class_id:cls ~at

(* Board path for one I_old step: read the class's activity record and
   answer from it, no publication needed.  Exact by the ordering
   argument in actboard.mli — observing [busy a] proves the running
   transaction's end tick is still ahead of this worker's own
   initiation, observing [idle] proves any unseen transaction's init
   is.  Transition states, arguments below the retained windows and
   seqlock retry exhaustion fall back to the snapshot path. *)
let fast_i_old w cls at =
  if Actboard.read_into w.sh.acts cls ~out:w.ab ~retries:64 then begin
    let r = Actboard.i_old_of_record w.ab ~at in
    if r >= 0 then r else slow_i_old w cls at
  end
  else slow_i_old w cls at

(* A_i^j(m): I_old composed along the critical path.  Classes this
   worker owns are answered from the live local registry; remote
   classes from their activity boards — wait-free either way. *)
let rec compose_threshold w m path =
  match path with
  | [] -> m
  | cls :: rest ->
    let m' =
      if owner w.sh cls = w.me then
        Registry.i_old w.registry ~class_id:cls ~at:m
      else fast_i_old w cls m
    in
    compose_threshold w m' rest

let a_threshold w ~from_class ~to_class m =
  match P.critical_path w.sh.partition from_class to_class with
  | None | Some [] ->
    invalid_arg
      (Printf.sprintf "Engine: no critical path from T%d to T%d" from_class
         to_class)
  | Some (_ :: rest) -> compose_threshold w m rest

(* Newest version of [key] strictly below [th] in a remote segment.
   The published view is complete at or below its publication's upto;
   the version ring carries the tail committed since, and holding any
   ring result or a clean floor crossing proves the splice covers the
   read.  Every version below a composed threshold also ends below it
   (class transactions are sequential: anything still running when the
   threshold was fixed capped it at its init), so when the ring has
   wrapped, a publication with upto >= th is complete by itself. *)
let rec read_remote_a w seg key th n =
  let pub = Atomic.get w.sh.pubs.(owner w.sh seg) in
  let v = Atomic.get w.sh.stores.(seg) in
  let r = Vring.latest_below w.sh.rings.(seg) ~key ~ts:th ~floor:pub.p_upto in
  if r > 0 then r
  else if r = 0 || pub.p_upto >= th then
    Pstore.view_latest_before v ~key ~ts:th
  else begin
    ignore (await_owner w (owner w.sh seg) th n);
    read_remote_a w seg key th (n + 16)
  end

let op_at w =
  match w.trace with Some _ -> Gclock.tick w.sh.clock | None -> 0

(* --- zero-allocation commit path helpers ---
   Top-level recursion instead of local closures, int results instead
   of tuples/options, trace events constructed only under [Some tr]:
   the Protocol B commit path allocates nothing at steady state, gated
   by the Gc-delta test over {!alloc_probe} (DESIGN.md §16). *)

let rec wb_find keys len key i =
  if i >= len then -1
  else if Array.unsafe_get keys i = key then i
  else wb_find keys len key (i + 1)

let wb_put w key v =
  let i = wb_find w.wb_keys w.wb_len key 0 in
  if i >= 0 then w.wb_vals.(i) <- v
  else begin
    if w.wb_len = Array.length w.wb_keys then begin
      let cap = Int.max 8 (2 * w.wb_len) in
      let ks = Array.make cap 0 and vs = Array.make cap 0 in
      Array.blit w.wb_keys 0 ks 0 w.wb_len;
      Array.blit w.wb_vals 0 vs 0 w.wb_len;
      w.wb_keys <- ks;
      w.wb_vals <- vs
    end;
    w.wb_keys.(w.wb_len) <- key;
    w.wb_vals.(w.wb_len) <- v;
    w.wb_len <- w.wb_len + 1
  end

let lat_push w v =
  if w.lat_n = Array.length w.lat then begin
    let bigger = Array.make (Int.max 64 (2 * w.lat_n)) 0. in
    Array.blit w.lat 0 bigger 0 w.lat_n;
    w.lat <- bigger
  end;
  w.lat.(w.lat_n) <- v;
  w.lat_n <- w.lat_n + 1

let rec run_update_ops w d cls init esc ops =
  match ops with
  | [] -> ()
  | op :: rest ->
    (match op with
    | Write (g, v) ->
      if g.Granule.segment <> cls then
        invalid_arg
          (Printf.sprintf "Engine: T%d writing outside root segment D%d" cls
             g.Granule.segment);
      wb_put w g.Granule.key v;
      w.c.n_writes <- w.c.n_writes + 1;
      (* escalated classes stamp versions at commit, so their Write
         records are deferred to the commit path where the stamp is
         known; plain classes emit the init-stamped record in place *)
      (match w.trace with
      | Some tr when not esc ->
        T.emit tr ~at:(op_at w)
          (T.Write
             { txn = d.d_id; segment = g.Granule.segment; key = g.Granule.key;
               ts = init })
      | Some _ | None -> ())
    | Read g ->
      let seg = g.Granule.segment in
      if seg = cls then begin
        (* Protocol B, domain-local: this domain runs class [cls] one
           transaction at a time, so the committed versions below
           [init] are the whole MVTO story — no pending versions to
           block on, no younger readers to reject for.  Own writes of
           this transaction are in the write buffer, not the store, and
           carry ts = init, which a read at [init] excludes anyway. *)
        let vts =
          Pstore.latest_before w.sh.seg_stores.(seg) ~key:g.Granule.key
            ~ts:init
        in
        w.c.n_reads_b <- w.c.n_reads_b + 1;
        match w.trace with
        | Some tr ->
          T.emit tr ~at:(op_at w)
            (T.Read
               { txn = d.d_id; protocol = T.B; segment = seg;
                 key = g.Granule.key; threshold = init; version = vts })
        | None -> ()
      end
      else begin
        if not (P.may_read w.sh.partition ~class_id:cls ~segment:seg) then
          invalid_arg
            (Printf.sprintf "Engine: T%d may not read D%d" cls seg);
        let th = a_threshold w ~from_class:cls ~to_class:seg init in
        (* own segments are served from the live local store — always
           complete; remote segments from the published view spliced
           with the owner's version ring *)
        let vts =
          if owner w.sh seg = w.me then
            Pstore.latest_before w.sh.seg_stores.(seg) ~key:g.Granule.key
              ~ts:th
          else read_remote_a w seg g.Granule.key th 0
        in
        w.c.n_reads_a <- w.c.n_reads_a + 1;
        match w.trace with
        | Some tr ->
          T.emit tr ~at:(op_at w)
            (T.Read
               { txn = d.d_id; protocol = T.A; segment = seg;
                 key = g.Granule.key; threshold = th; version = vts })
        | None -> ()
      end);
    run_update_ops w d cls init esc rest

let exec_update w d cls =
  let sh = w.sh in
  (* one mode read per transaction: modes only swap behind the park
     barrier, and transactions never span a barrier, so the whole
     transaction runs under the value read here *)
  let esc = Array.unsafe_get (Atomic.get sh.modes) cls <> 0 in
  let t0 = if w.timed then Unix.gettimeofday () else 0. in
  (* board transition before the init tick: a reader that still sees
     [idle] is guaranteed our init lands above its own initiation *)
  Actboard.begin_txn sh.acts cls;
  let init = Gclock.tick sh.clock in
  Registry.register_active w.registry ~class_id:cls ~id:d.d_id ~init;
  Actboard.set_busy sh.acts cls ~init;
  (match w.trace with
  | Some tr ->
    T.emit tr ~at:init (T.Begin { txn = d.d_id; kind = T.Update cls; init })
  | None -> ());
  w.wb_len <- 0;
  run_update_ops w d cls init esc d.d_ops;
  if d.d_abort then begin
    Actboard.set_ending sh.acts cls;
    let a = Gclock.tick sh.clock in
    Registry.finish_active w.registry ~class_id:cls ~endt:a;
    Actboard.set_idle sh.acts cls ~init ~endt:a;
    (match w.trace with
    | Some tr -> T.emit tr ~at:a (T.Abort { txn = d.d_id; at = a })
    | None -> ());
    w.c.n_aborted <- w.c.n_aborted + 1;
    if w.keep_outcomes then w.outcomes <- (d.d_id, false) :: w.outcomes
  end
  else begin
    (* install committed versions into the packed local store and the
       segment's version ring — the ring entries become visible in one
       atomic head store, and strictly before the closing window does:
       any reader that can name these versions can also find them *)
    let store = sh.seg_stores.(cls) in
    let ring = sh.rings.(cls) in
    let h0 = Vring.head ring in
    (* escalated classes serialize by commit order: versions carry a
       fresh commit stamp instead of the initiation.  The class is
       domain-sequential either way, so the next transaction's init
       still lands above this stamp and own Protocol B reads at init
       stay complete; cross readers are safe because any composed
       threshold is at most the init of an active escalated
       transaction, which is below its commit stamp (DESIGN.md §18). *)
    let ts = if esc then Gclock.tick sh.clock else init in
    for i = 0 to w.wb_len - 1 do
      let key = Array.unsafe_get w.wb_keys i in
      let value = Array.unsafe_get w.wb_vals i in
      Pstore.add_commit store ~key ~ts ~value;
      Vring.stage ring (h0 + i) ~ts ~key ~value
    done;
    Vring.advance ring (h0 + w.wb_len);
    (* deferred Write records: the commit stamp is only known here *)
    (match w.trace with
    | Some tr when esc ->
      for i = 0 to w.wb_len - 1 do
        T.emit tr ~at:(op_at w)
          (T.Write
             { txn = d.d_id; segment = cls; key = Array.unsafe_get w.wb_keys i;
               ts })
      done
    | Some _ | None -> ());
    (* board transition before the end tick: a reader still seeing
       [busy] is guaranteed our end lands above its own initiation *)
    Actboard.set_ending sh.acts cls;
    let e = Gclock.tick sh.clock in
    Registry.finish_active w.registry ~class_id:cls ~endt:e;
    Actboard.set_idle sh.acts cls ~init ~endt:e;
    (match w.trace with
    | Some tr -> T.emit tr ~at:e (T.Commit { txn = d.d_id; at = e })
    | None -> ());
    w.c.n_committed <- w.c.n_committed + 1;
    sh.class_commits.(cls) <- sh.class_commits.(cls) + 1;
    if w.timed then lat_push w (Unix.gettimeofday () -. t0);
    if w.keep_outcomes then w.outcomes <- (d.d_id, true) :: w.outcomes
  end;
  (* batched publication: once per K finished transactions; in between,
     only when a waiter or the coordinator asks *)
  w.since_pub <- w.since_pub + 1;
  if w.since_pub >= sh.publish_every then publish_pub w
  else service_repub w

let rec run_ro_ops w d (wall : TW.wall) ops =
  match ops with
  | [] -> ()
  | op :: rest ->
    (match op with
    | Write _ -> invalid_arg "Engine: read-only transaction writes"
    | Read g ->
      let seg = g.Granule.segment in
      let th = wall.TW.components.(seg) in
      let vts =
        Pstore.view_latest_before
          (Atomic.get w.sh.stores.(seg))
          ~key:g.Granule.key ~ts:th
      in
      w.c.n_reads_c <- w.c.n_reads_c + 1;
      match w.trace with
      | Some tr ->
        T.emit tr ~at:(op_at w)
          (T.Read
             { txn = d.d_id; protocol = T.C; segment = seg;
               key = g.Granule.key; threshold = th; version = vts })
      | None -> ());
    run_ro_ops w d wall rest

let exec_ro w d =
  let sh = w.sh in
  (* wall first, initiation tick second: released_at < init, always;
     the epoch-wall read is one epoch load and one slot load, no retry *)
  let wall = Epochwall.read sh.wall in
  let init = Gclock.tick sh.clock in
  (match w.trace with
  | Some tr ->
    T.emit tr ~at:init (T.Begin { txn = d.d_id; kind = T.Read_only; init })
  | None -> ());
  run_ro_ops w d wall d.d_ops;
  let e = Gclock.tick sh.clock in
  (match w.trace with
  | Some tr -> T.emit tr ~at:e (T.Commit { txn = d.d_id; at = e })
  | None -> ());
  w.c.n_committed <- w.c.n_committed + 1;
  if w.keep_outcomes then w.outcomes <- (d.d_id, true) :: w.outcomes

let exec w d =
  match d.d_kind with
  | `Update cls -> exec_update w d cls
  | `Read_only -> exec_ro w d

(* --- the wall coordinator --- *)

exception Wall_stale
exception Wall_not_computable

(* The repartition barrier, coordinator side (DESIGN.md §17).  Three
   phases, all between transactions of every worker:

   1. Park: raise the park flag and wait until every live worker is
      quiescent and published (exited workers count — their final
      publication covers everything they will ever do).
   2. Swap: install the new owner map, bump the epoch and the barrier
      generation, then wait until every live worker has republished
      under the new map — this clears the old owner's claims about a
      migrated class and establishes the new owner's baseline before
      anyone runs again.
   3. Release: emit the {!Trace.event.Repartition} record at a fresh
      tick (every pre-barrier event is below it, every post-barrier
      event above — the monitor's no-active-in-flight rule) and drop
      the park flag, waiting for every parked flag to clear so a flag
      read as set always means "currently quiescent".

   Transactions never span a barrier, so every mid-transaction
   invariant (single-writer stores and rings, stable ownership for a
   composed threshold) holds without further synchronization.

   The same barrier carries per-class CC mode swaps (DESIGN.md §18):
   [swap] runs in the fully-quiesced window and returns the trace event
   describing what changed — a {!Trace.event.Repartition} for an owner
   map swap, a {!Trace.event.Escalation} for a mode vector swap. *)
let run_barrier sh ~swap trace =
  Atomic.set sh.park true;
  let quiet i = Atomic.get sh.parked.(i) || Atomic.get sh.gone.(i) in
  let rec wait p =
    if not (p ()) then begin
      Unix.sleepf 5e-6;
      wait p
    end
  in
  let all p =
    let rec go i = i >= sh.workers || (p i && go (i + 1)) in
    fun () -> go 0
  in
  wait (all quiet);
  let ev = swap () in
  let g = 1 + Atomic.fetch_and_add sh.gen 1 in
  wait (all (fun i -> Atomic.get sh.gone.(i) || Atomic.get sh.acked.(i) >= g));
  let at = Gclock.tick sh.clock in
  (match trace with Some tr -> T.emit tr ~at ev | None -> ());
  Atomic.set sh.park false;
  wait (all (fun i -> not (Atomic.get sh.parked.(i))))

(* Owner-map swap, run inside the barrier's quiesced window. *)
let repartition_swap sh ~target ~kind () =
  let old_map = Atomic.get sh.owner_map in
  let moved = ref [] in
  for c = sh.nseg - 1 downto 0 do
    if target.(c) <> old_map.(c) then moved := c :: !moved
  done;
  Atomic.set sh.owner_map (Array.copy target);
  let ep = 1 + Atomic.fetch_and_add sh.epoch 1 in
  T.Repartition { epoch = ep; kind; moved = !moved; fresh_store = false }

(* Mode-vector swap: every worker is between transactions, so no update
   transaction of any class is in flight when the stamping discipline
   changes — the monitor's escalation invariant. *)
let escalation_swap sh ~target () =
  Atomic.set sh.modes (Array.copy target);
  let seq = 1 + Atomic.fetch_and_add sh.esc_seq 1 in
  T.Escalation { seq; modes = Array.to_list target }

let rotated_map map workers =
  Array.map (fun o -> (o + 1) mod workers) map

let coordinator sh ~primary ~starts ~initial_m ?(plan = []) ?(mode_plan = [])
    ?control ?(rotate_every_s = 0.) trace =
  let nseg = sh.nseg in
  let reduction = sh.partition.P.reduction in
  let last_m = ref initial_m in
  let releases = ref 0 and lag_sum = ref 0 and lag_max = ref 0 in
  let repartitions = ref 0 and escalations = ref 0 in
  let plan = ref plan in
  let mode_plan = ref mode_plan in
  let next_rotate =
    ref
      (if rotate_every_s > 0. then Unix.gettimeofday () +. rotate_every_s
       else infinity)
  in
  let stuck = ref 0 in
  while not (Atomic.get sh.stop) do
    (* repartition requests travel this path: one scripted plan step per
       poll iteration, or a periodic whole-map rotation in timed mode *)
    (match !plan with
    | (target, kind) :: rest ->
      plan := rest;
      run_barrier sh ~swap:(repartition_swap sh ~target ~kind) trace;
      incr repartitions
    | [] ->
      if Unix.gettimeofday () >= !next_rotate then begin
        next_rotate := Unix.gettimeofday () +. rotate_every_s;
        let target = rotated_map (Atomic.get sh.owner_map) sh.workers in
        run_barrier sh ~swap:(repartition_swap sh ~target ~kind:"migrate")
          trace;
        incr repartitions
      end);
    (* scripted mode swaps: one escalation barrier per poll iteration *)
    (match !mode_plan with
    | target :: rest ->
      mode_plan := rest;
      run_barrier sh ~swap:(escalation_swap sh ~target) trace;
      incr escalations
    | [] -> ());
    (* the closed-loop controller: fed a racy snapshot of cumulative
       per-class commits, it may ask for a live repartition; rate
       limiting and hysteresis live inside the controller *)
    (match control with
    | Some f -> (
      match f (Array.copy sh.class_commits) with
      | Some target ->
        run_barrier sh ~swap:(repartition_swap sh ~target ~kind:"auto") trace;
        incr repartitions
      | None -> ())
    | None -> ());
    (* one release attempt over a single fetch of every publication;
       the stability fold is O(workers) over worker-precomputed
       quiescence summaries, not O(classes x history) *)
    let advanced =
      try
        let omap = Atomic.get sh.owner_map in
        let pubs = Array.map Atomic.get sh.pubs in
        let pub_of c = pubs.(omap.(c)) in
        (* below q(i), class i is quiescent — every member with a
           smaller initiation has finished and its versions published.
           The fold over every worker keeps a past owner's stale-but-
           true claim in play only to tighten the bound. *)
        let q_of i =
          Array.fold_left (fun acc p -> Time.min acc p.p_q.(i)) max_int pubs
        in
        let m =
          Array.fold_left (fun acc p -> Time.min acc p.p_qmin) max_int pubs
        in
        (* m = max_int means every owner has published its final (exit)
           snapshot: the run is over, a wall there would be meaningless *)
        if m > !last_m && m < max_int then begin
          let i_old_at c a =
            let p = pub_of c in
            if p.p_upto < a then raise Wall_stale;
            Registry.snap_i_old p.p_snap ~class_id:c ~at:a
          in
          let c_late_at c a =
            let p = pub_of c in
            if p.p_upto < a then raise Wall_stale;
            match Registry.snap_c_late p.p_snap ~class_id:c ~at:a with
            | Ok v -> v
            | Error _ -> raise Wall_not_computable
          in
          (* E_s^i(m): I_old at the target of up-arcs, C_late at the
             source of down-arcs — Activity.e_fn over frozen views *)
          let components = Array.make nseg Time.zero in
          for i = 0 to nseg - 1 do
            let path =
              match P.ucp sh.partition starts.(i) i with
              | Some p -> p
              | None -> [ i ]
            in
            let rec walk a = function
              | [] | [ _ ] -> a
              | u :: (v :: _ as rest) ->
                if Hdd_graph.Digraph.mem_arc reduction u v then
                  walk (i_old_at v a) rest
                else walk (c_late_at u a) rest
            in
            components.(i) <- walk m path
          done;
          (* stability re-check against the published summaries: a
             component above q(i) could admit a version a class-i
             straggler has yet to publish; retry once they drain *)
          for i = 0 to nseg - 1 do
            if components.(i) > q_of i then raise Wall_stale
          done;
          let released_at = Gclock.tick sh.clock in
          let wall = TW.make ~s:primary ~m ~components ~released_at in
          Epochwall.publish sh.wall wall;
          (match trace with
          | None -> ()
          | Some tr ->
            T.emit tr ~at:released_at
              (T.Wall_release
                 { m; released_at; components = Array.copy components }));
          last_m := m;
          incr releases;
          let lag = released_at - m in
          lag_sum := !lag_sum + lag;
          if lag > !lag_max then lag_max := lag;
          true
        end
        else m >= max_int
      with Wall_stale | Wall_not_computable -> false
    in
    (* batched publication bounds how far summaries lag behind the
       clock; when the wall fails to advance for two polls, ask every
       worker to republish rather than waiting out a full batch *)
    if advanced then stuck := 0
    else begin
      incr stuck;
      if !stuck >= 2 then begin
        stuck := 0;
        for i = 0 to sh.workers - 1 do
          Atomic.set sh.repub.(i) true
        done
      end
    end;
    Unix.sleepf (if sh.workers = 0 then 1e-3 else 1e-4)
  done;
  (!releases, !lag_sum, !lag_max, !repartitions, !escalations)

(* --- engine setup shared by both modes --- *)

type setup = {
  s_sh : shared;
  s_regs : Registry.t array;
  s_primary : int;
  s_starts : int array;
  s_initial_m : Time.t;
  s_coord_trace : T.t option;
}

let default_owner_map ~segments ~workers =
  Array.init segments (fun c -> c mod workers)

let setup ~partition ~init ~workers ~traced ~trace_capacity ~publish_every =
  if workers <= 0 then invalid_arg "Engine: workers must be > 0";
  if publish_every <= 0 then invalid_arg "Engine: publish_every must be > 0";
  (* bootstrap values no longer surface: reads report version
     timestamps only, so [init] is accepted for interface stability *)
  ignore (init : Granule.t -> int);
  let nseg = P.segment_count partition in
  let clock = Gclock.create () in
  let regs = Array.init workers (fun _ -> Registry.create ~classes:nseg ()) in
  (* the initial wall: trivially computable on the idle system, released
     before any worker starts so read-only transactions always find one *)
  let m0 = Gclock.tick clock in
  let released0 = Gclock.tick clock in
  let primary =
    match P.lowest_classes partition with s :: _ -> s | [] -> 0
  in
  let starts = TW.component_starts partition in
  let wall0 =
    TW.make ~s:primary ~m:m0 ~components:(Array.make nseg m0)
      ~released_at:released0
  in
  let omap0 = default_owner_map ~segments:nseg ~workers in
  let sh =
    { clock;
      partition;
      workers;
      nseg;
      publish_every;
      stores = Array.init nseg (fun _ -> Atomic.make Pstore.empty_view);
      acts = Actboard.create ~classes:nseg;
      rings = Array.init nseg (fun _ -> Vring.create ~entries:1024);
      seg_stores = Array.init nseg (fun _ -> Pstore.create ());
      pubs =
        Array.init workers (fun w ->
            let upto = Gclock.now clock in
            (* empty registries: I_old(c, upto) = upto for every class *)
            let q = Array.make nseg max_int in
            let owns = ref false in
            Array.iteri
              (fun c o ->
                if o = w then begin
                  q.(c) <- upto;
                  owns := true
                end)
              omap0;
            Atomic.make
              { p_snap = Registry.snapshot regs.(w);
                p_upto = upto;
                p_q = q;
                p_qmin = (if !owns then upto else max_int) });
      repub = Array.init workers (fun _ -> Atomic.make false);
      wall = Epochwall.create wall0;
      owner_map = Atomic.make omap0;
      epoch = Atomic.make 0;
      park = Atomic.make false;
      parked = Array.init workers (fun _ -> Atomic.make false);
      gone = Array.init workers (fun _ -> Atomic.make false);
      gen = Atomic.make 0;
      acked = Array.init workers (fun _ -> Atomic.make 0);
      stop = Atomic.make false;
      halt = Atomic.make false;
      modes = Atomic.make (Array.make nseg 0);
      esc_seq = Atomic.make 0;
      class_commits = Array.make nseg 0 }
  in
  let coord_trace =
    if traced then begin
      let tr = T.create ~capacity:trace_capacity ~domain:(workers + 1) () in
      T.emit tr ~at:released0
        (T.Wall_release
           { m = m0; released_at = released0;
             components = Array.make nseg m0 });
      Some tr
    end
    else None
  in
  { s_sh = sh; s_regs = regs; s_primary = primary; s_starts = starts;
    s_initial_m = m0; s_coord_trace = coord_trace }

let fresh_wctx sh ~me ~registry ~trace ~keep_outcomes ~timed =
  { sh;
    me;
    registry;
    own_classes = own_classes_of_map (Atomic.get sh.owner_map) me;
    my_gen = Atomic.get sh.gen;
    trace;
    c = fresh_counters ();
    outcomes = [];
    keep_outcomes;
    since_pub = 0;
    last_pruned_m = Time.zero;
    wb_keys = Array.make 8 0;
    wb_vals = Array.make 8 0;
    wb_len = 0;
    ab = Array.make 6 0;
    lat = (if timed then Array.make 1024 0. else [||]);
    lat_n = 0;
    timed }

let stats_of counters
    ~wall:(releases, lag_sum, lag_max, repartitions, escalations) =
  let committed = ref 0 and aborted = ref 0 and pubs = ref 0 in
  let ra = ref 0 and rb = ref 0 and rc = ref 0 and wr = ref 0 in
  Array.iter
    (fun c ->
      committed := !committed + c.n_committed;
      aborted := !aborted + c.n_aborted;
      ra := !ra + c.n_reads_a;
      rb := !rb + c.n_reads_b;
      rc := !rc + c.n_reads_c;
      wr := !wr + c.n_writes;
      pubs := !pubs + c.n_pubs)
    counters;
  { committed = !committed;
    aborted = !aborted;
    reads_a = !ra;
    reads_b = !rb;
    reads_c = !rc;
    writes = !wr;
    publications = !pubs;
    wall_releases = releases;
    wall_lag_sum = lag_sum;
    wall_lag_max = lag_max;
    repartitions;
    escalations }

(* --- script mode --- *)

let dummy_desc = { d_id = -1; d_kind = `Read_only; d_ops = []; d_abort = false }

let run_script ~partition ~init ?(plan = []) ?(mode_plan = [])
    (config : config) ~script =
  let s =
    setup ~partition ~init ~workers:config.workers ~traced:config.traced
      ~trace_capacity:config.trace_capacity
      ~publish_every:config.publish_every
  in
  let sh = s.s_sh in
  let traces =
    Array.init config.workers (fun w ->
        if config.traced then
          Some (T.create ~capacity:config.trace_capacity ~domain:(w + 1) ())
        else None)
  in
  (* Update descriptors are routed per class, not per worker: a live
     migration re-owns the class queue wholesale (its new owner simply
     starts draining it), so no in-flight descriptor is ever stranded
     in a mailbox whose worker no longer runs the class.  Read-only
     descriptors stay round-robin per worker — any worker can serve
     them. *)
  let cboxes =
    Array.init sh.nseg (fun _ ->
        Mailbox.create ~capacity:config.mailbox_capacity)
  in
  let roboxes =
    Array.init config.workers (fun _ ->
        Mailbox.create ~capacity:config.mailbox_capacity)
  in
  let worker w =
    let ctx =
      fresh_wctx sh ~me:w ~registry:s.s_regs.(w) ~trace:traces.(w)
        ~keep_outcomes:true ~timed:false
    in
    (* drain one publication batch per lock acquisition *)
    let batch =
      Int.max 1 (Int.min config.publish_every config.mailbox_capacity)
    in
    let buf = Array.make batch dummy_desc in
    (* a worker exits only when every queue in the system is drained:
       class ownership may still migrate to it while any queue holds
       work, and every class queue always has a live owner until then *)
    let drained_all () =
      Mailbox.is_drained roboxes.(w)
      && Array.for_all Mailbox.is_drained cboxes
    in
    let rec loop () =
      check_park ctx;
      let did = ref false in
      let drain box =
        let n = Mailbox.pop_into box buf ~max:batch in
        if n > 0 then begin
          did := true;
          for i = 0 to n - 1 do
            exec ctx buf.(i)
          done
        end
      in
      drain roboxes.(w);
      let own = ctx.own_classes in
      for i = 0 to Array.length own - 1 do
        drain cboxes.(own.(i))
      done;
      if !did then loop ()
      else if drained_all () then ()
      else begin
        (* idle: a fresh publication costs nothing we need and keeps
           waiters and the coordinator moving *)
        publish_pub ctx;
        Unix.sleepf 10e-6;
        loop ()
      end
    in
    loop ();
    publish_final ctx;
    Atomic.set sh.gone.(w) true;
    (ctx.outcomes, ctx.c)
  in
  let domains =
    Array.init config.workers (fun w -> Domain.spawn (fun () -> worker w))
  in
  let coord =
    Domain.spawn (fun () ->
        coordinator sh ~primary:s.s_primary ~starts:s.s_starts
          ~initial_m:s.s_initial_m ~plan ~mode_plan s.s_coord_trace)
  in
  Array.iter
    (fun d ->
      ignore
        (match d.d_kind with
        | `Update c -> Mailbox.push cboxes.(c) d
        | `Read_only ->
          let o =
            ((d.d_id mod config.workers) + config.workers)
            mod config.workers
          in
          Mailbox.push roboxes.(o) d))
    script;
  Array.iter Mailbox.close cboxes;
  Array.iter Mailbox.close roboxes;
  let results = Array.map Domain.join domains in
  Atomic.set sh.stop true;
  let wall_stats = Domain.join coord in
  let outcomes =
    Array.to_list results
    |> List.concat_map (fun (o, _) -> o)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let records =
    if config.traced then
      T.merged
        (List.filter_map Fun.id
           (Array.to_list traces @ [ s.s_coord_trace ]))
    else []
  in
  { records;
    outcomes;
    stats = stats_of (Array.map snd results) ~wall:wall_stats }

(* --- timed self-generating mode (benchmark) --- *)

type mix = {
  ro_frac : float;
  abort_frac : float;
  cross_reads : int;
  own_ops : int;
  keys_per_segment : int;
}

type timed = {
  t_stats : stats;
  t_elapsed_s : float;
  t_latency : Hdd_obs.Metrics.t;
}

let gen_desc sh mix prng ~id ~classes_mine ~readable =
  if Array.length classes_mine > 0 && Hdd_util.Prng.float prng 1. >= mix.ro_frac
  then begin
    let cls = Hdd_util.Prng.pick prng classes_mine in
    let key () = Hdd_util.Prng.int prng mix.keys_per_segment in
    let own =
      List.init (Int.max 1 mix.own_ops) (fun i ->
          let g = Granule.make ~segment:cls ~key:(key ()) in
          if i = 0 then Write (g, Hdd_util.Prng.int prng 1_000_000)
          else Read g)
    in
    let cross =
      match readable.(cls) with
      | [||] -> []
      | segs ->
        List.init mix.cross_reads (fun _ ->
            let seg = Hdd_util.Prng.pick prng segs in
            Read (Granule.make ~segment:seg ~key:(key ())))
    in
    { d_id = id;
      d_kind = `Update cls;
      d_ops = own @ cross;
      d_abort = Hdd_util.Prng.float prng 1. < mix.abort_frac }
  end
  else begin
    let nseg = sh.nseg in
    let ops =
      List.init (Int.max 1 mix.cross_reads) (fun _ ->
          let seg = Hdd_util.Prng.int prng nseg in
          Read
            (Granule.make ~segment:seg
               ~key:(Hdd_util.Prng.int prng mix.keys_per_segment)))
    in
    { d_id = id; d_kind = `Read_only; d_ops = ops; d_abort = false }
  end

let run_timed ~partition ~init ~workers ~seconds ?(wall_poll_s = 100e-6)
    ?(publish_every = 8) ?(rotate_every_s = 0.) ?control ~mix ~seed () =
  ignore wall_poll_s;
  let s =
    setup ~partition ~init ~workers ~traced:false ~trace_capacity:1024
      ~publish_every
  in
  let sh = s.s_sh in
  let nseg = sh.nseg in
  let readable =
    Array.init nseg (fun cls ->
        List.init nseg Fun.id
        |> List.filter (fun seg ->
               seg <> cls && P.may_read partition ~class_id:cls ~segment:seg)
        |> Array.of_list)
  in
  let worker w =
    let prng = Hdd_util.Prng.create (seed + (w * 7919)) in
    let ctx =
      fresh_wctx sh ~me:w ~registry:s.s_regs.(w) ~trace:None
        ~keep_outcomes:false ~timed:true
    in
    let next = ref (w + 1) in
    while not (Atomic.get sh.halt) do
      (* a live migration lands here: park, re-own, resume — the owned
         class set may have changed, so it is re-read every iteration *)
      check_park ctx;
      let d =
        gen_desc sh mix prng ~id:!next ~classes_mine:ctx.own_classes
          ~readable
      in
      next := !next + workers;
      exec ctx d;
      (* read-only streaks publish nothing on their own; requests from
         waiters and the coordinator are still served between
         transactions *)
      service_repub ctx
    done;
    publish_final ctx;
    Atomic.set sh.gone.(w) true;
    (ctx.c, ctx.lat, ctx.lat_n)
  in
  let domains = Array.init workers (fun w -> Domain.spawn (fun () -> worker w)) in
  let coord =
    Domain.spawn (fun () ->
        coordinator sh ~primary:s.s_primary ~starts:s.s_starts
          ~initial_m:s.s_initial_m ?control ~rotate_every_s None)
  in
  let t0 = Unix.gettimeofday () in
  Unix.sleepf seconds;
  Atomic.set sh.halt true;
  let results = Array.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set sh.stop true;
  let wall_stats = Domain.join coord in
  let metrics = Hdd_obs.Metrics.create () in
  let hist = Hdd_obs.Metrics.histogram metrics "commit_latency_us" in
  Array.iter
    (fun (_, lat, lat_n) ->
      for i = 0 to lat_n - 1 do
        Hdd_obs.Metrics.observe hist (lat.(i) *. 1e6)
      done)
    results;
  { t_stats = stats_of (Array.map (fun (c, _, _) -> c) results) ~wall:wall_stats;
    t_elapsed_s = elapsed;
    t_latency = metrics }

(* --- allocation probe ---

   A single-domain steady-state Protocol B commit loop: one writer
   class, one write + one own-segment read per transaction, publication
   deferred (publish_every = max_int), trace off, outcomes off — the
   pure commit path.  Periodic maintenance (watermark + prune) keeps
   the packed store and the registry window index at steady capacity so
   in-place compaction absorbs all growth.

   Bytes per commit are measured by differencing an N-commit window and
   a 2N-commit window, which cancels the constant allocation of the
   measurement itself (Gc.allocated_bytes boxes its result). *)

let probe_maintain ctx =
  let now = Gclock.now ctx.sh.clock in
  Pstore.set_watermark ctx.sh.seg_stores.(0) now;
  Registry.prune ctx.registry ~upto:(now - 1)

let rec probe_run ctx descs i n =
  if i < n then begin
    if i land 255 = 0 then probe_maintain ctx;
    exec_update ctx (Array.unsafe_get descs (i land 7)) 0;
    probe_run ctx descs (i + 1) n
  end

let alloc_probe ?(commits = 20_000) () =
  let partition =
    P.build_exn
      (Hdd_core.Spec.make ~segments:[ "D0" ]
         ~types:[ Hdd_core.Spec.txn_type ~name:"t0" ~writes:[ 0 ] ~reads:[ 0 ] ])
  in
  let s =
    setup ~partition
      ~init:(fun _ -> 0)
      ~workers:1 ~traced:false ~trace_capacity:1024 ~publish_every:max_int
  in
  let ctx =
    fresh_wctx s.s_sh ~me:0 ~registry:s.s_regs.(0) ~trace:None
      ~keep_outcomes:false ~timed:false
  in
  let descs =
    Array.init 8 (fun i ->
        let g = Granule.make ~segment:0 ~key:i in
        { d_id = i + 1; d_kind = `Update 0; d_ops = [ Write (g, i); Read g ];
          d_abort = false })
  in
  (* reach steady-state capacities before measuring *)
  probe_run ctx descs 0 4096;
  let b0 = Gc.allocated_bytes () in
  probe_run ctx descs 0 commits;
  let b1 = Gc.allocated_bytes () in
  probe_run ctx descs 0 (2 * commits);
  let b2 = Gc.allocated_bytes () in
  ((b2 -. b1) -. (b1 -. b0)) /. float_of_int commits
