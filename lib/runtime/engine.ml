module T = Hdd_obs.Trace
module Snap = Hdd_mvstore.Snapshot
module P = Hdd_core.Partition
module TW = Hdd_core.Timewall

type op = Read of Granule.t | Write of Granule.t * int

type desc = {
  d_id : Txn.id;
  d_kind : [ `Update of int | `Read_only ];
  d_ops : op list;
  d_abort : bool;
}

type config = {
  workers : int;
  traced : bool;
  trace_capacity : int;
  mailbox_capacity : int;
  wall_poll_s : float;
}

let default_config ~workers =
  { workers;
    traced = true;
    trace_capacity = 1 lsl 16;
    mailbox_capacity = 64;
    wall_poll_s = 100e-6 }

type stats = {
  committed : int;
  aborted : int;
  reads_a : int;
  reads_b : int;
  reads_c : int;
  writes : int;
  wall_releases : int;
  wall_lag_sum : int;
  wall_lag_max : int;
}

type run = {
  records : T.record list;
  outcomes : (Txn.id * bool) list;
  stats : stats;
}

(* --- shared state --- *)

(* An owner's activity publication: a frozen registry view plus the
   global-clock value read at capture.  The snapshot answers I_old and
   C_late exactly for arguments <= upto: every transaction of the owner's
   classes with a smaller initiation was ticked, registered and (if
   finished) finalized on the owner's own thread before the capture. *)
type pub = { p_snap : Registry.snapshot; p_upto : Time.t }

type shared = {
  clock : Gclock.t;
  partition : P.t;
  workers : int;
  nseg : int;
  init_fn : Granule.t -> int;
  stores : Snap.t Atomic.t array;  (* per segment, set only by its owner *)
  pubs : pub Atomic.t array;  (* per worker *)
  wall : Seqwall.t;
  stop : bool Atomic.t;  (* coordinator shutdown *)
  halt : bool Atomic.t;  (* timed mode: worker deadline *)
}

let owner sh class_id = class_id mod sh.workers

type counters = {
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_reads_a : int;
  mutable n_reads_b : int;
  mutable n_reads_c : int;
  mutable n_writes : int;
}

let fresh_counters () =
  { n_committed = 0; n_aborted = 0; n_reads_a = 0; n_reads_b = 0;
    n_reads_c = 0; n_writes = 0 }

type wctx = {
  sh : shared;
  me : int;
  registry : Registry.t;
  locals : Snap.t array;  (* per segment; only own segments maintained *)
  trace : T.t option;
  c : counters;
  mutable outcomes : (Txn.id * bool) list;
  mutable latencies : float list;  (* commit latency, seconds; timed mode *)
  timed : bool;
}

let emit_at w ~at ev =
  match w.trace with None -> () | Some tr -> T.emit tr ~at ev

(* Commit-then-activity is the publication order commit relies on; the
   capture itself reads the clock first so [upto] never claims more than
   the snapshot holds. *)
let publish_pub w =
  let upto = Gclock.now w.sh.clock in
  Atomic.set w.sh.pubs.(w.me)
    { p_snap = Registry.snapshot w.registry; p_upto = upto }

(* A worker with no work left will register nothing ever again, so its
   final activity snapshot answers exactly for every argument: publish it
   with unbounded coverage, or waiters on this owner would spin forever
   once it exits. *)
let publish_final w =
  Atomic.set w.sh.pubs.(w.me)
    { p_snap = Registry.snapshot w.registry; p_upto = max_int }

(* Wait for the owner of [class_id] to have published activity covering
   argument [m].  While waiting, republish our own activity: two workers
   awaiting each other mid-transaction then unblock each other (a
   publication is valid at any instant — the current transaction simply
   shows as active). *)
let await_pub w ~class_id m =
  let rec go n =
    let pub = Atomic.get w.sh.pubs.(owner w.sh class_id) in
    if pub.p_upto >= m then pub
    else begin
      publish_pub w;
      (* back off once the owner is clearly descheduled (oversubscribed
         cores): snapshots are too expensive to re-capture in a hot spin *)
      if n < 64 then Domain.cpu_relax () else Unix.sleepf 20e-6;
      go (n + 1)
    end
  in
  go 0

(* A_i^j(m) over published snapshots: I_old composed along the critical
   path, each step exact because we wait until the queried snapshot's
   upto covers the argument — the same historical facts the serial
   scheduler computes, since I_old(a) is fixed once the clock passes
   [a]. *)
let a_threshold w ~from_class ~to_class m =
  match P.critical_path w.sh.partition from_class to_class with
  | None | Some [] ->
    invalid_arg
      (Printf.sprintf "Engine: no critical path from T%d to T%d" from_class
         to_class)
  | Some (_ :: rest) ->
    List.fold_left
      (fun m cls ->
        let pub = await_pub w ~class_id:cls m in
        Registry.snap_i_old pub.p_snap ~class_id:cls ~at:m)
      m rest

let serve sh snap g ~ts =
  match Snap.latest_before snap g ~ts with
  | Some (vts, v) -> (vts, v)
  | None -> (Time.zero, sh.init_fn g)

let op_at w =
  match w.trace with Some _ -> Gclock.tick w.sh.clock | None -> 0

let exec_update w d cls =
  let sh = w.sh in
  let t0 = if w.timed then Unix.gettimeofday () else 0. in
  let init = Gclock.tick sh.clock in
  let txn = Txn.make ~id:d.d_id ~kind:(Txn.Update cls) ~init in
  Registry.register_in w.registry ~class_id:cls txn;
  emit_at w ~at:init (T.Begin { txn = d.d_id; kind = T.Update cls; init });
  let pending = ref [] in
  List.iter
    (fun op ->
      match op with
      | Write (g, v) ->
        if g.Granule.segment <> cls then
          invalid_arg
            (Printf.sprintf "Engine: T%d writing outside root segment D%d"
               cls g.Granule.segment);
        pending :=
          (g, v)
          :: List.filter (fun (g', _) -> not (Granule.equal g g')) !pending;
        w.c.n_writes <- w.c.n_writes + 1;
        emit_at w ~at:(op_at w)
          (T.Write
             { txn = d.d_id; segment = g.Granule.segment; key = g.Granule.key;
               ts = init })
      | Read g ->
        let seg = g.Granule.segment in
        if seg = cls then begin
          (* Protocol B, domain-local: this domain runs class [cls] one
             transaction at a time, so the committed snapshot below
             [init] is the whole MVTO story — no pending versions to
             block on, no younger readers to reject for. *)
          let vts, _ = serve sh w.locals.(seg) g ~ts:init in
          w.c.n_reads_b <- w.c.n_reads_b + 1;
          emit_at w ~at:(op_at w)
            (T.Read
               { txn = d.d_id; protocol = T.B; segment = seg;
                 key = g.Granule.key; threshold = init; version = vts })
        end
        else begin
          if not (P.may_read sh.partition ~class_id:cls ~segment:seg) then
            invalid_arg
              (Printf.sprintf "Engine: T%d may not read D%d" cls seg);
          let th = a_threshold w ~from_class:cls ~to_class:seg init in
          (* store fetched after the threshold: every version below [th]
             was published before the activity publication the threshold
             came from *)
          let store = Atomic.get sh.stores.(seg) in
          let vts, _ = serve sh store g ~ts:th in
          w.c.n_reads_a <- w.c.n_reads_a + 1;
          emit_at w ~at:(op_at w)
            (T.Read
               { txn = d.d_id; protocol = T.A; segment = seg;
                 key = g.Granule.key; threshold = th; version = vts })
        end)
    d.d_ops;
  if d.d_abort then begin
    let a = Gclock.tick sh.clock in
    Txn.abort txn ~at:a;
    emit_at w ~at:a (T.Abort { txn = d.d_id; at = a });
    w.c.n_aborted <- w.c.n_aborted + 1;
    w.outcomes <- (d.d_id, false) :: w.outcomes
  end
  else begin
    let e = Gclock.tick sh.clock in
    Txn.commit txn ~at:e;
    (* store before activity: install committed versions into the
       immutable per-segment index and swap it in before the registry
       publication below makes this transaction's window visible *)
    let touched = ref [] in
    List.iter
      (fun ((g : Granule.t), v) ->
        let seg = g.segment in
        w.locals.(seg) <- Snap.add_commit w.locals.(seg) g ~ts:init ~value:v;
        if not (List.mem seg !touched) then touched := seg :: !touched)
      !pending;
    List.iter (fun seg -> Atomic.set sh.stores.(seg) w.locals.(seg)) !touched;
    emit_at w ~at:e (T.Commit { txn = d.d_id; at = e });
    w.c.n_committed <- w.c.n_committed + 1;
    if w.timed then w.latencies <- (Unix.gettimeofday () -. t0) :: w.latencies;
    w.outcomes <- (d.d_id, true) :: w.outcomes
  end;
  publish_pub w

let exec_ro w d =
  let sh = w.sh in
  (* wall first, initiation tick second: released_at < init, always *)
  let wall = Seqwall.read sh.wall in
  let init = Gclock.tick sh.clock in
  emit_at w ~at:init (T.Begin { txn = d.d_id; kind = T.Read_only; init });
  List.iter
    (fun op ->
      match op with
      | Write _ -> invalid_arg "Engine: read-only transaction writes"
      | Read g ->
        let seg = g.Granule.segment in
        let th = wall.TW.components.(seg) in
        let store = Atomic.get sh.stores.(seg) in
        let vts, _ = serve sh store g ~ts:th in
        w.c.n_reads_c <- w.c.n_reads_c + 1;
        emit_at w ~at:(op_at w)
          (T.Read
             { txn = d.d_id; protocol = T.C; segment = seg;
               key = g.Granule.key; threshold = th; version = vts }))
    d.d_ops;
  let e = Gclock.tick sh.clock in
  emit_at w ~at:e (T.Commit { txn = d.d_id; at = e });
  w.c.n_committed <- w.c.n_committed + 1;
  w.outcomes <- (d.d_id, true) :: w.outcomes

let exec w d =
  match d.d_kind with
  | `Update cls -> exec_update w d cls
  | `Read_only -> exec_ro w d

(* --- the wall coordinator --- *)

exception Wall_stale
exception Wall_not_computable

let coordinator sh ~primary ~starts ~initial_m trace =
  let nseg = sh.nseg in
  let reduction = sh.partition.P.reduction in
  let last_m = ref initial_m in
  let releases = ref 0 and lag_sum = ref 0 and lag_max = ref 0 in
  while not (Atomic.get sh.stop) do
    (* one release attempt over a single fetch of every publication *)
    (try
       let pubs = Array.map Atomic.get sh.pubs in
       let pub_of c = pubs.(c mod sh.workers) in
       (* q.(i): below this, class i is quiescent — every member with a
          smaller initiation has finished and its versions are published *)
       let q =
         Array.init nseg (fun c ->
             let p = pub_of c in
             Registry.snap_i_old p.p_snap ~class_id:c ~at:p.p_upto)
       in
       let m = Array.fold_left Time.min q.(0) q in
       (* m = max_int means every owner has published its final (exit)
          snapshot: the run is over, a wall there would be meaningless *)
       if m > !last_m && m < max_int then begin
         let i_old_at c a =
           let p = pub_of c in
           if p.p_upto < a then raise Wall_stale;
           Registry.snap_i_old p.p_snap ~class_id:c ~at:a
         in
         let c_late_at c a =
           let p = pub_of c in
           if p.p_upto < a then raise Wall_stale;
           match Registry.snap_c_late p.p_snap ~class_id:c ~at:a with
           | Ok v -> v
           | Error _ -> raise Wall_not_computable
         in
         (* E_s^i(m): I_old at the target of up-arcs, C_late at the
            source of down-arcs — Activity.e_fn over frozen views *)
         let components = Array.make nseg Time.zero in
         for i = 0 to nseg - 1 do
           let path =
             match P.ucp sh.partition starts.(i) i with
             | Some p -> p
             | None -> [ i ]
           in
           let rec walk a = function
             | [] | [ _ ] -> a
             | u :: (v :: _ as rest) ->
               if Hdd_graph.Digraph.mem_arc reduction u v then
                 walk (i_old_at v a) rest
               else walk (c_late_at u a) rest
           in
           components.(i) <- walk m path
         done;
         (* stability re-check: a component above q.(i) could admit a
            version a class-i straggler has yet to publish; retry once
            the stragglers drain *)
         Array.iteri
           (fun i v -> if v > q.(i) then raise Wall_stale)
           components;
         let released_at = Gclock.tick sh.clock in
         let wall = TW.make ~s:primary ~m ~components ~released_at in
         Seqwall.publish sh.wall wall;
         (match trace with
         | None -> ()
         | Some tr ->
           T.emit tr ~at:released_at
             (T.Wall_release
                { m; released_at; components = Array.copy components }));
         last_m := m;
         incr releases;
         let lag = released_at - m in
         lag_sum := !lag_sum + lag;
         if lag > !lag_max then lag_max := lag
       end
     with Wall_stale | Wall_not_computable -> ());
    Unix.sleepf (if sh.workers = 0 then 1e-3 else 1e-4)
  done;
  (!releases, !lag_sum, !lag_max)

(* --- engine setup shared by both modes --- *)

type setup = {
  s_sh : shared;
  s_regs : Registry.t array;
  s_primary : int;
  s_starts : int array;
  s_initial_m : Time.t;
  s_coord_trace : T.t option;
}

let setup ~partition ~init ~workers ~traced ~trace_capacity =
  if workers <= 0 then invalid_arg "Engine: workers must be > 0";
  let nseg = P.segment_count partition in
  let clock = Gclock.create () in
  let regs = Array.init workers (fun _ -> Registry.create ~classes:nseg ()) in
  (* the initial wall: trivially computable on the idle system, released
     before any worker starts so read-only transactions always find one *)
  let m0 = Gclock.tick clock in
  let released0 = Gclock.tick clock in
  let primary =
    match P.lowest_classes partition with s :: _ -> s | [] -> 0
  in
  let starts = TW.component_starts partition in
  let wall0 =
    TW.make ~s:primary ~m:m0 ~components:(Array.make nseg m0)
      ~released_at:released0
  in
  let sh =
    { clock;
      partition;
      workers;
      nseg;
      init_fn = init;
      stores = Array.init nseg (fun _ -> Atomic.make Snap.empty);
      pubs =
        Array.init workers (fun w ->
            Atomic.make
              { p_snap = Registry.snapshot regs.(w);
                p_upto = Gclock.now clock });
      wall = Seqwall.create wall0;
      stop = Atomic.make false;
      halt = Atomic.make false }
  in
  let coord_trace =
    if traced then begin
      let tr = T.create ~capacity:trace_capacity ~domain:(workers + 1) () in
      T.emit tr ~at:released0
        (T.Wall_release
           { m = m0; released_at = released0;
             components = Array.make nseg m0 });
      Some tr
    end
    else None
  in
  { s_sh = sh; s_regs = regs; s_primary = primary; s_starts = starts;
    s_initial_m = m0; s_coord_trace = coord_trace }

let stats_of counters ~wall:(releases, lag_sum, lag_max) =
  let committed = ref 0 and aborted = ref 0 in
  let ra = ref 0 and rb = ref 0 and rc = ref 0 and wr = ref 0 in
  Array.iter
    (fun c ->
      committed := !committed + c.n_committed;
      aborted := !aborted + c.n_aborted;
      ra := !ra + c.n_reads_a;
      rb := !rb + c.n_reads_b;
      rc := !rc + c.n_reads_c;
      wr := !wr + c.n_writes)
    counters;
  { committed = !committed;
    aborted = !aborted;
    reads_a = !ra;
    reads_b = !rb;
    reads_c = !rc;
    writes = !wr;
    wall_releases = releases;
    wall_lag_sum = lag_sum;
    wall_lag_max = lag_max }

(* --- script mode --- *)

let run_script ~partition ~init (config : config) ~script =
  let s =
    setup ~partition ~init ~workers:config.workers ~traced:config.traced
      ~trace_capacity:config.trace_capacity
  in
  let sh = s.s_sh in
  let traces =
    Array.init config.workers (fun w ->
        if config.traced then
          Some (T.create ~capacity:config.trace_capacity ~domain:(w + 1) ())
        else None)
  in
  let mboxes =
    Array.init config.workers (fun _ ->
        Mailbox.create ~capacity:config.mailbox_capacity)
  in
  let worker w =
    let ctx =
      { sh; me = w; registry = s.s_regs.(w);
        locals = Array.make sh.nseg Snap.empty; trace = traces.(w);
        c = fresh_counters (); outcomes = []; latencies = []; timed = false }
    in
    let rec loop () =
      match Mailbox.try_pop mboxes.(w) with
      | Some d ->
        exec ctx d;
        loop ()
      | None ->
        if Mailbox.is_drained mboxes.(w) then ()
        else begin
          publish_pub ctx;
          Unix.sleepf 10e-6;
          loop ()
        end
    in
    loop ();
    publish_final ctx;
    (ctx.outcomes, ctx.c)
  in
  let domains =
    Array.init config.workers (fun w -> Domain.spawn (fun () -> worker w))
  in
  let coord =
    Domain.spawn (fun () ->
        coordinator sh ~primary:s.s_primary ~starts:s.s_starts
          ~initial_m:s.s_initial_m s.s_coord_trace)
  in
  Array.iter
    (fun d ->
      let o =
        match d.d_kind with
        | `Update c -> owner sh c
        | `Read_only -> ((d.d_id mod config.workers) + config.workers)
                        mod config.workers
      in
      ignore (Mailbox.push mboxes.(o) d))
    script;
  Array.iter Mailbox.close mboxes;
  let results = Array.map Domain.join domains in
  Atomic.set sh.stop true;
  let wall_stats = Domain.join coord in
  let outcomes =
    Array.to_list results
    |> List.concat_map (fun (o, _) -> o)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let records =
    if config.traced then
      T.merged
        (List.filter_map Fun.id
           (Array.to_list traces @ [ s.s_coord_trace ]))
    else []
  in
  { records;
    outcomes;
    stats = stats_of (Array.map snd results) ~wall:wall_stats }

(* --- timed self-generating mode (benchmark) --- *)

type mix = {
  ro_frac : float;
  abort_frac : float;
  cross_reads : int;
  own_ops : int;
  keys_per_segment : int;
}

type timed = {
  t_stats : stats;
  t_elapsed_s : float;
  t_latency : Hdd_obs.Metrics.t;
}

let gen_desc sh mix prng ~id ~classes_mine ~readable =
  if Array.length classes_mine > 0 && Hdd_util.Prng.float prng 1. >= mix.ro_frac
  then begin
    let cls = Hdd_util.Prng.pick prng classes_mine in
    let key () = Hdd_util.Prng.int prng mix.keys_per_segment in
    let own =
      List.init (Int.max 1 mix.own_ops) (fun i ->
          let g = Granule.make ~segment:cls ~key:(key ()) in
          if i = 0 then Write (g, Hdd_util.Prng.int prng 1_000_000)
          else Read g)
    in
    let cross =
      match readable.(cls) with
      | [||] -> []
      | segs ->
        List.init mix.cross_reads (fun _ ->
            let seg = Hdd_util.Prng.pick prng segs in
            Read (Granule.make ~segment:seg ~key:(key ())))
    in
    { d_id = id;
      d_kind = `Update cls;
      d_ops = own @ cross;
      d_abort = Hdd_util.Prng.float prng 1. < mix.abort_frac }
  end
  else begin
    let nseg = sh.nseg in
    let ops =
      List.init (Int.max 1 mix.cross_reads) (fun _ ->
          let seg = Hdd_util.Prng.int prng nseg in
          Read
            (Granule.make ~segment:seg
               ~key:(Hdd_util.Prng.int prng mix.keys_per_segment)))
    in
    { d_id = id; d_kind = `Read_only; d_ops = ops; d_abort = false }
  end

let run_timed ~partition ~init ~workers ~seconds ?(wall_poll_s = 100e-6)
    ~mix ~seed () =
  ignore wall_poll_s;
  let s =
    setup ~partition ~init ~workers ~traced:false ~trace_capacity:1024
  in
  let sh = s.s_sh in
  let nseg = sh.nseg in
  let readable =
    Array.init nseg (fun cls ->
        List.init nseg Fun.id
        |> List.filter (fun seg ->
               seg <> cls && P.may_read partition ~class_id:cls ~segment:seg)
        |> Array.of_list)
  in
  let worker w =
    let prng = Hdd_util.Prng.create (seed + (w * 7919)) in
    let classes_mine =
      List.init nseg Fun.id
      |> List.filter (fun c -> owner sh c = w)
      |> Array.of_list
    in
    let ctx =
      { sh; me = w; registry = s.s_regs.(w);
        locals = Array.make nseg Snap.empty; trace = None;
        c = fresh_counters (); outcomes = []; latencies = []; timed = true }
    in
    let next = ref (w + 1) in
    while not (Atomic.get sh.halt) do
      let d = gen_desc sh mix prng ~id:!next ~classes_mine ~readable in
      next := !next + workers;
      exec ctx d;
      publish_pub ctx
    done;
    publish_final ctx;
    (ctx.c, ctx.latencies)
  in
  let domains = Array.init workers (fun w -> Domain.spawn (fun () -> worker w)) in
  let coord =
    Domain.spawn (fun () ->
        coordinator sh ~primary:s.s_primary ~starts:s.s_starts
          ~initial_m:s.s_initial_m None)
  in
  let t0 = Unix.gettimeofday () in
  Unix.sleepf seconds;
  Atomic.set sh.halt true;
  let results = Array.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set sh.stop true;
  let wall_stats = Domain.join coord in
  let metrics = Hdd_obs.Metrics.create () in
  let hist = Hdd_obs.Metrics.histogram metrics "commit_latency_us" in
  Array.iter
    (fun (_, lats) ->
      List.iter
        (fun l -> Hdd_obs.Metrics.observe hist (l *. 1e6))
        lats)
    results;
  { t_stats = stats_of (Array.map fst results) ~wall:wall_stats;
    t_elapsed_s = elapsed;
    t_latency = metrics }
