type t = {
  epoch : int Atomic.t;
  slots : Hdd_core.Timewall.wall array;  (* two slots, index [epoch land 1] *)
}

let create wall = { epoch = Atomic.make 0; slots = [| wall; wall |] }

let publish t wall =
  let e = Atomic.get t.epoch in
  t.slots.((e + 1) land 1) <- wall;
  Atomic.set t.epoch (e + 1)

let read t = t.slots.(Atomic.get t.epoch land 1)

let epoch t = Atomic.get t.epoch

let read_slot t e = t.slots.(e land 1)
