type 'a t = {
  lock : Mutex.t;
  buf : 'a option array;
  mutable head : int;  (* next pop *)
  mutable len : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be > 0";
  { lock = Mutex.create ();
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false }

let capacity t = Array.length t.buf

let rec push t x =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    false
  end
  else if t.len < capacity t then begin
    t.buf.((t.head + t.len) mod capacity t) <- Some x;
    t.len <- t.len + 1;
    Mutex.unlock t.lock;
    true
  end
  else begin
    Mutex.unlock t.lock;
    Unix.sleepf 20e-6;
    push t x
  end

let try_pop t =
  Mutex.lock t.lock;
  let r =
    if t.len = 0 then None
    else begin
      let x = t.buf.(t.head) in
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod capacity t;
      t.len <- t.len - 1;
      x
    end
  in
  Mutex.unlock t.lock;
  r

let pop_into t out ~max =
  Mutex.lock t.lock;
  let n = Int.min max (Int.min t.len (Array.length out)) in
  for i = 0 to n - 1 do
    (match t.buf.(t.head) with
    | Some x -> out.(i) <- x
    | None -> assert false);
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1
  done;
  Mutex.unlock t.lock;
  n

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Mutex.unlock t.lock

let is_drained t =
  Mutex.lock t.lock;
  let r = t.closed && t.len = 0 in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let r = t.len in
  Mutex.unlock t.lock;
  r
