(** Per-segment version rings — committed versions visible before the
    next store publication.

    Batched publication leaves up to K transactions' versions sitting
    unpublished in the owner's local store; a reader whose composed
    threshold reaches above the published view's upto would otherwise
    wait a scheduling round-trip.  The ring carries exactly that tail:
    the owner appends every committed [ts; key; value] and publishes a
    transaction's entries with one atomic head store; readers scan
    backward and splice the result over the view (DESIGN.md §16).

    Single writer per ring (the segment's owner domain), any number of
    readers, zero allocation on both sides of the hot path. *)

type t

val create : entries:int -> t
val capacity : t -> int

val head : t -> int
(** Total entries ever appended (monotone). *)

val stage : t -> int -> ts:int -> key:int -> value:int -> unit
(** Owner only: write entry [i] without publishing it.  Entries must
    be staged at [head t], [head t + 1], ... and then released with
    {!advance} — one atomic store covering the whole transaction. *)

val advance : t -> int -> unit
(** Owner only: publish all staged entries below the new head. *)

val latest_below : t -> key:int -> ts:int -> floor:int -> int
(** Timestamp of the newest entry of [key] strictly below [ts], given
    a store view covering everything at or below [floor]:

    - [> 0]: found in the ring — newer than anything the view holds;
    - [0]: the ring proves nothing newer than [floor] matches, so the
      view's answer is complete;
    - [-1]: the ring wrapped past the floor mid-scan — fall back to an
      awaited publication. *)

val value_at : t -> key:int -> ts:int -> int option
(** Value of the exact version [ts] of [key], if the ring still holds
    it.  Test/tool convenience; allocates. *)
