(** Seqlock-style publication of the current time wall.

    The wall coordinator is the only writer; every domain reads on each
    read-only begin.  The classic seqlock epoch pair: the epoch is even
    when the slot is stable, the writer makes it odd, stores the new
    wall, then makes it even again; a reader retries until it observes
    the same even epoch on both sides of its load.

    Memory-publication argument (DESIGN.md §13): OCaml [Atomic]
    operations are SC, so the epoch stores order the wall store for any
    reader that sees the second epoch bump; the wall itself is an
    immutable record, so even the discarded racy load of a retrying
    reader only ever observes a whole, previously published value —
    OCaml's memory model forbids tearing and out-of-thin-air reads. *)

type t

val create : Hdd_core.Timewall.wall -> t

val publish : t -> Hdd_core.Timewall.wall -> unit
(** Single writer only (the coordinator). *)

val read : t -> Hdd_core.Timewall.wall
(** Wait-free in practice: retries only while overlapping a publish.
    A reader that loads the wall {e before} ticking its initiation time
    is guaranteed [released_at < init] — the release instant was ticked
    before publication, the initiation after the read. *)

val epoch : t -> int
(** Current epoch (even when stable) — telemetry. *)
