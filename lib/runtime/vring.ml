(* Per-segment version ring: the out-of-band channel that lets a
   Protocol A reader see versions committed since the owner's last
   store publication, without waiting for the next one.

   A fixed ring of [ts; key; value] triples in one int array, written
   only by the segment's owner domain, plus a monotone head counter =
   total entries ever appended.  The owner stages a whole
   transaction's writes with plain stores and then publishes them with
   a single [Atomic.set] on the head — all-or-nothing per transaction,
   and the atomic store orders the plain ones for readers.

   Readers scan backward from the head.  Entry timestamps ascend with
   the index (per-class inits are monotone), so the first key match
   below the threshold is the newest one, and the first timestamp at
   or below the reader's floor (the upto of a store view it holds)
   marks the point where that view takes over.  Overwrites are caught
   after the fact: entry [j] is destroyed by append [j + cap], so a
   result stands only if [head - j <= cap] still holds at return. *)

type t = { buf : int array; head : int Atomic.t; cap : int }

let create ~entries =
  if entries <= 0 then invalid_arg "Vring.create: entries must be > 0";
  { buf = Array.make (entries * 3) 0; head = Atomic.make 0; cap = entries }

let capacity t = t.cap
let head t = Atomic.get t.head

let stage t i ~ts ~key ~value =
  let s = i mod t.cap * 3 in
  Array.unsafe_set t.buf s ts;
  Array.unsafe_set t.buf (s + 1) key;
  Array.unsafe_set t.buf (s + 2) value

let advance t h = Atomic.set t.head h

(* Backward scan.  [stop_ts < 0] until the first entry at or below the
   floor; after that, only entries of that same transaction (equal ts)
   are still examined — a multi-key transaction straddling the floor
   must be searched completely, anything older is covered by the view.
   Each terminal re-validates its own index against the live head:
   everything examined sits at or above it, so one check covers the
   whole scan. *)
let rec scan t ~key ~th ~floor h j stop_ts =
  if j < 0 then if Atomic.get t.head <= t.cap then 0 else -1
  else if j <= h - t.cap then -1
  else begin
    let s = j mod t.cap * 3 in
    let ts = Array.unsafe_get t.buf s in
    if stop_ts >= 0 && ts <> stop_ts then
      if Atomic.get t.head - j <= t.cap then 0 else -1
    else if ts < th && Array.unsafe_get t.buf (s + 1) = key then
      if Atomic.get t.head - j <= t.cap then ts else -1
    else
      let stop_ts = if stop_ts < 0 && ts <= floor then ts else stop_ts in
      scan t ~key ~th ~floor h (j - 1) stop_ts
  end

let latest_below t ~key ~ts ~floor =
  let h = Atomic.get t.head in
  scan t ~key ~th:ts ~floor h (h - 1) (-1)

let value_at t ~key ~ts =
  let h = Atomic.get t.head in
  let rec go j =
    if j < 0 || j <= h - t.cap then None
    else
      let s = j mod t.cap * 3 in
      if Array.unsafe_get t.buf s = ts && Array.unsafe_get t.buf (s + 1) = key
      then begin
        let v = Array.unsafe_get t.buf (s + 2) in
        if Atomic.get t.head - j <= t.cap then Some v else None
      end
      else go (j - 1)
  in
  go (h - 1)
