(** The shared logical clock of the parallel runtime.

    The serial stack's {!Time.Clock} is a mutable cell owned by one
    thread; here every domain ticks the same [Atomic] counter, so
    initiation and commit instants stay unique and totally ordered
    across domains — the property all the activity-link reasoning rests
    on — and the total order on timestamps doubles as the merge order
    for per-domain trace rings. *)

type t

val create : ?start:Time.t -> unit -> t
(** [start] (default 0) is the last time already handed out. *)

val tick : t -> Time.t
(** A fresh time, strictly larger than every time returned by any
    domain so far ([Atomic.fetch_and_add]): unique and monotone. *)

val now : t -> Time.t
(** The last time handed out anywhere.  A reader holding [now t = c]
    knows every {e later} tick on any domain exceeds [c] — what makes a
    published activity snapshot's [upto] bound sound. *)
