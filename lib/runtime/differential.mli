(** The differential correctness harness for the parallel engine.

    A parallel run is accepted only if, simultaneously:

    + the merged per-domain trace, restricted to committed transactions,
      replays into a schedule the MVSG {!Hdd_core.Certifier} certifies
      one-copy serializable;
    + the merged trace passes every online invariant of
      {!Hdd_obs.Monitor} (wall rule [`Any_released] — a parallel reader
      may legally hold any wall released before its initiation);
    + executing the {e same} descriptor script through the serial
      {!Hdd_core.Scheduler}, one transaction at a time in the parallel
      run's initiation order, yields the same per-transaction
      commit/abort verdict for every descriptor; and
    + for every committed update transaction, the sequence of writers it
      read from in its {e own root segment} (Protocol B) is identical in
      both runs — within a class both runs serialize identically, so
      root-segment reads must resolve to the same writers (version
      timestamps differ across runs; writer identity is the invariant).

    Protocol A/C read {e values} may legitimately differ from the serial
    replay: activity intervals differ when earlier-initiated
    transactions are still running in the parallel run, so thresholds
    differ.  Their correctness is what the certifier and monitor
    establish. *)

type script = Engine.desc array

val gen_script :
  partition:Hdd_core.Partition.t ->
  seed:int ->
  txns:int ->
  ?keys_per_segment:int ->
  ?ro_frac:float ->
  ?abort_frac:float ->
  ?cross_frac:float ->
  ?ops_per_txn:int ->
  unit ->
  script
(** Random descriptor script legal for the partition: updates write only
    their root segment and read only segments their class may read;
    read-only descriptors read arbitrary segments (the ad-hoc-read
    shape, served by Protocol C). *)

val default_init : Granule.t -> int
(** The store initializer both runs share. *)

type report = {
  r_serializable : bool;
  r_cycle : int list option;
  r_monitor_violations : string list;
  r_verdicts_agree : bool;
  r_b_reads_agree : bool;
  r_mismatches : string list;  (** human-readable disagreement details *)
  r_committed : int;
  r_aborted : int;
  r_wall_releases : int;
  r_repartitions : int;  (** live ownership migrations during the run *)
  r_escalations : int;  (** live CC mode swaps during the run *)
  r_events : int;
}

val failures : report -> string list
(** The names of the checks that failed, in the order listed above:
    ["mvsg-certification"], ["monitor-replay"],
    ["serial-oracle-agreement"], ["read-from-equality"].  Empty iff
    {!ok}. *)

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
(** Leads with [FAILED checks: <names>] when any check failed. *)

val check_run :
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  script:script ->
  Engine.run ->
  report
(** Apply all four checks to an already-executed run of [script] —
    whatever produced it (the multicore engine, or a sharded cluster
    whose merged trace has the same shape). *)

val check :
  ?plan:(int array * string) list ->
  ?mode_plan:int array list ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  config:Engine.config ->
  script ->
  report
(** Run the script on the parallel engine, then {!check_run} it.
    [plan] is forwarded to {!Engine.run_script}: live repartitions the
    coordinator applies mid-run, which the four checks must not be able
    to distinguish from a plan-free run (the repartition-equivalence
    property in the test suite).  [mode_plan] likewise forwards live
    per-class CC escalations (DESIGN.md §18); the escalation-equivalence
    property asserts the report is identical to the plan-free run's. *)

val rotation_plan :
  segments:int -> workers:int -> int -> (int array * string) list
(** [rotation_plan ~segments ~workers n]: [n] successive whole-map
    ownership rotations starting from {!Engine.default_owner_map} —
    every class changes owner at every step when [workers > 1]. *)

val escalation_plan : segments:int -> int -> int array list
(** [escalation_plan ~segments n]: [n] forced CC mode flips in which
    every class changes stamping discipline at every step (alternating
    parities), the last step restoring all-plain — the adversarial
    schedule for the escalation-equivalence property. *)

(** {1 Stress profiles} *)

val chain_partition : int -> Hdd_core.Partition.t
(** A depth-[n] chain: type [i] writes [D_i] and reads [D_i, D_{i+1}] —
    all activity links are up-steps.  Also the benchmark hierarchy. *)

val tree_partition : int -> Hdd_core.Partition.t
(** [n] branch classes all reading a shared root [D_0] — the shape whose
    walls exercise [C_late] down-steps. *)

type profile = Abort_heavy | Adhoc_read | Mixed

val stress_one :
  ?publish_every:int ->
  ?repartitions:int ->
  ?escalations:int ->
  seed:int -> workers:int -> txns:int -> profile:profile -> unit -> report
(** One randomized stress run: the seed picks a chain or tree hierarchy
    (trees exercise the wall coordinator's [C_late] down-steps), the
    profile sets the mix — [Abort_heavy] ~40% aborts, [Adhoc_read] ~50%
    read-only transactions over arbitrary segments, [Mixed] in
    between.  [publish_every] is the engine's publication batch K
    (default 8): outcomes must be identical at every value, which is
    exactly what the batching property in the test suite asserts.
    [repartitions] (default 0) injects that many live whole-map
    ownership rotations ({!rotation_plan}) while the run is in flight;
    the report must stay identical to the plan-free run.  [escalations]
    (default 0) likewise injects that many live CC mode flips
    ({!escalation_plan}). *)
