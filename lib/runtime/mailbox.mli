(** Bounded multi-producer single-consumer mailboxes — the work-feed of
    the parallel runtime.

    A mutex-protected ring.  Producers block (poll-sleep) while the box
    is full — the backpressure that keeps a fast driver from ballooning
    memory ahead of a slow owner domain — and consumers poll with
    {!try_pop} so an idle owner can interleave housekeeping (activity
    republication) with draining.  OCaml 5.1's stdlib has no timed
    condition wait, hence the poll loops; the sleep quantum is small
    against transaction service times. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> bool
(** Enqueue, blocking while full.  [false] iff the box was closed (the
    item is dropped). *)

val try_pop : 'a t -> 'a option

val pop_into : 'a t -> 'a array -> max:int -> int
(** Batched drain: pop up to [max] items (bounded by [Array.length out])
    into [out.(0 .. n-1)] under one lock acquisition and return [n].
    Zero on an empty box.  The engine drains one publication batch per
    acquisition so mailbox locking amortizes with everything else
    (DESIGN.md §16). *)

val close : 'a t -> unit
(** No further pushes succeed; queued items remain poppable. *)

val is_drained : 'a t -> bool
(** Closed and empty — the consumer's exit condition. *)

val length : 'a t -> int
