type t = int Atomic.t

let create ?(start = 0) () = Atomic.make start
let tick t = Atomic.fetch_and_add t 1 + 1
let now t = Atomic.get t
