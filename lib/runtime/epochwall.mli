(** Wait-free two-slot publication of the current time wall.

    Replaces {!Seqwall}'s seqlock on the runtime's hot read path
    (DESIGN.md §16).  Two wall slots alternate: the single writer stores
    the new wall into slot [(epoch + 1) land 1] — the slot no new reader
    can be directed to — then advances the epoch.  A reader performs
    exactly two loads and never retries:

    {v  let e = Atomic.get epoch in  slots.(e land 1)  v}

    Safety: the slot a reader is directed to was last written {e before}
    the epoch advance that made it current, and is not touched again
    until the epoch has advanced once more.  A reader suspended between
    its two loads for a full writer cycle observes the wall of epoch
    [e + 2k] instead — a {e later complete} wall, never a torn one: the
    wall record itself is immutable, OCaml atomics are SC (the epoch
    load synchronizes with the store that followed the slot write), and
    walls are published in release order so any observable value is
    monotone in the components.  The remaining race — writer laps the
    reader mid-cycle and rewrites the very slot being read — requires
    the reader to sleep across an entire epoch, in which case it reads
    either the old or the new immutable record, both complete.

    {!Seqwall} stays in-tree as the ablation partner; the equivalence
    property in [test_runtime.ml] drives both with 1000 random release
    schedules and asserts identical reads. *)

type t

val create : Hdd_core.Timewall.wall -> t

val publish : t -> Hdd_core.Timewall.wall -> unit
(** Single writer only (the wall coordinator). *)

val read : t -> Hdd_core.Timewall.wall
(** Wait-free: one epoch load, one slot load, no retry loop.  A reader
    that loads the wall {e before} ticking its initiation time is
    guaranteed [released_at < init], as with {!Seqwall.read}. *)

val epoch : t -> int
(** Current epoch — telemetry, and the pinned-reader stress test. *)

val read_slot : t -> int -> Hdd_core.Timewall.wall
(** [read_slot t e] reads the slot a reader holding epoch [e] would
    read — the two halves of {!read} split apart so the torn-read
    stress test can pin a reader mid-read while the writer advances. *)
