(** The multicore parallel execution engine: one domain per group of
    transaction classes, coordination-free cross-class reads.

    Topology (DESIGN.md §13): class [Ti] is owned by worker domain
    [i mod workers].  An owner runs its classes' transactions one at a
    time, so Protocol B inside each root segment is domain-local with no
    locks, never blocks and never rejects — intra-class concurrency is
    the coordination the paper's decomposition removes, and giving it up
    buys lock-freedom; the parallelism that remains, cross-class, is
    exactly what the paper makes free.  On commit an owner appends committed
    versions to a packed-int {!Hdd_mvstore.Pstore} per root segment —
    the zero-allocation commit path, gated by {!alloc_probe} — and once
    per [publish_every] finished transactions (or on request) publishes
    frozen store views with one [Atomic.set] each, followed by its
    {!Registry.snapshot} together with an [upto] bound (the global
    clock value at capture: the snapshot answers [I_old]/[C_late]
    exactly for arguments at or below it — store before activity, so
    any reader that derives a threshold from the activity publication
    finds every version below that threshold already in the view it
    fetches afterwards) and its quiescence summary (DESIGN.md §16).

    A Protocol A read by class [i] of segment [j] composes
    [I_old] along the critical path over published snapshots — waiting,
    if a snapshot's [upto] lags the argument, for the owner's next
    republication (the waiter posts a republication request the owner
    serves between transactions, and keeps serving requests aimed at
    itself, so two waiters always unblock each other; classes the
    reading worker itself owns are answered from its live registry with
    no wait at all) — then loads the segment's published view and
    serves the latest committed version below the threshold: the same historical fact the serial scheduler computes,
    because [I_old(m)] is fixed once the clock passes [m].

    A wall-coordinator domain anchors Protocol C walls at
    [m = min_i q_i] where [q_i = I_old^i(upto_i)] — below [q_i] class
    [i] is quiescent and fully published.  Each worker precomputes its
    classes' [q] at publication time, so a release attempt folds
    O(workers) summaries instead of rescanning every class's history;
    the coordinator evaluates [E_s^i(m)] over the same snapshots,
    re-checks every component against [q], and releases through a
    wait-free {!Epochwall} (the {!Seqwall} seqlock stays as the
    ablation partner).  Read-only transactions load the wall before
    ticking their initiation, so a released wall always satisfies
    [released_at < init].

    Correctness is checked differentially ({!Differential}): merged
    per-domain traces are certified by the MVSG certifier, replayed
    through the invariant {!Hdd_obs.Monitor}, and compared against the
    serial {!Hdd_core.Scheduler} oracle. *)

type op =
  | Read of Granule.t
  | Write of Granule.t * int  (** update transactions: own root segment only *)

type desc = {
  d_id : Txn.id;  (** unique, > 0; stable across parallel and serial runs *)
  d_kind : [ `Update of int | `Read_only ];
  d_ops : op list;
  d_abort : bool;  (** driver-chosen abort after executing every op *)
}

type config = {
  workers : int;  (** worker domains; classes are assigned [c mod workers] *)
  traced : bool;
      (** per-domain trace rings, one clock tick per event so the merge
          by [(at, dom, seq)] is a total order; off for benchmarks *)
  trace_capacity : int;
  mailbox_capacity : int;
  wall_poll_s : float;  (** coordinator poll between release attempts *)
  publish_every : int;
      (** batched publication: workers publish registry/store snapshots
          once per [publish_every] finished transactions, plus on
          republication requests from waiters and a stuck coordinator.
          1 restores PR 5's publish-per-commit behaviour; outcomes are
          identical at every value (the batching equivalence property in
          [test_runtime.ml]) *)
}

val default_config : workers:int -> config

type stats = {
  committed : int;
  aborted : int;
  reads_a : int;
  reads_b : int;
  reads_c : int;
  writes : int;
  publications : int;  (** activity/store publications across workers *)
  wall_releases : int;
  wall_lag_sum : int;  (** sum of [released_at - m] in clock ticks *)
  wall_lag_max : int;
  repartitions : int;
      (** live ownership migrations applied behind a park barrier *)
  escalations : int;
      (** live per-class CC mode swaps applied behind the same barrier
          (DESIGN.md §18) *)
}

type run = {
  records : Hdd_obs.Trace.record list;  (** merged; empty when untraced *)
  outcomes : (Txn.id * bool) list;  (** per descriptor: committed? sorted by id *)
  stats : stats;
}

val default_owner_map : segments:int -> workers:int -> int array
(** The initial class-to-worker assignment: class [c] is owned by
    worker [c mod workers]. *)

val rotated_map : int array -> int -> int array
(** [rotated_map map workers] moves every class to the next worker
    modulo [workers] — the canonical repartition plan step. *)

val run_script :
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  ?plan:(int array * string) list ->
  ?mode_plan:int array list ->
  config ->
  script:desc array ->
  run
(** Execute the script: update descriptors are pushed in order into a
    bounded per-class mailbox drained by the class's current owner,
    read-only ones round-robin by id into per-worker mailboxes
    (backpressure when full).  Returns when every descriptor has
    finished and the coordinator has stopped.

    [plan] is a list of live repartitions: each entry [(target, kind)]
    is a class-to-worker owner map (length = segment count, entries in
    [0, workers)) the coordinator installs behind a park barrier while
    the run is in flight, one per coordinator poll, in order — see
    DESIGN.md §17.  Every repartition emits a
    {!Hdd_obs.Trace.event.Repartition} record and counts in
    [stats.repartitions].  The default is no repartitions.

    [mode_plan] is a list of live CC-mode swaps (DESIGN.md §18): each
    entry is a per-class mode vector (length = segment count; 0 = plain
    HDD init-stamped versions, 1 = escalated commit-stamped versions)
    the coordinator installs behind the same park barrier, one per
    poll, in order.  Because every worker is between transactions when
    the vector swaps, no transaction ever straddles a mode change; each
    swap emits a {!Hdd_obs.Trace.event.Escalation} record and counts in
    [stats.escalations].  Classes run by the engine are
    domain-sequential, so commit order equals initiation order and
    either stamping discipline yields the same committed outcomes — the
    escalation-equivalence property in [test_hybrid.ml].
    @raise Invalid_argument on an update descriptor writing outside its
    root segment or reading a segment its class may not read. *)

(** {1 Timed self-generating runs (benchmark mode)} *)

type mix = {
  ro_frac : float;  (** share of read-only (Protocol C) transactions *)
  abort_frac : float;  (** share of update transactions that abort *)
  cross_reads : int;  (** Protocol A reads per update transaction *)
  own_ops : int;  (** Protocol B ops per update transaction (first is a write) *)
  keys_per_segment : int;
}

type timed = {
  t_stats : stats;
  t_elapsed_s : float;
  t_latency : Hdd_obs.Metrics.t;
      (** [commit_latency_us] histogram across all workers *)
}

val run_timed :
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  workers:int ->
  seconds:float ->
  ?wall_poll_s:float ->
  ?publish_every:int ->
  ?rotate_every_s:float ->
  ?control:(int array -> int array option) ->
  mix:mix ->
  seed:int ->
  unit ->
  timed
(** Untraced closed-loop run: each worker generates and executes its own
    transactions until the deadline.  Used by [hdd_cli bench --parallel]
    for the scaling curves.  [publish_every] defaults to 8.

    [rotate_every_s] > 0 makes the coordinator apply a live whole-map
    ownership rotation ({!rotated_map}) behind a park barrier every
    that many seconds — the [bench --adapt] live-repartition load.
    0 (the default) disables it.

    [control] is the closed-loop placement controller
    ({!Hdd_adapt.Control}): once per coordinator poll it is fed a racy
    snapshot of cumulative per-class commit counts and may return a
    target owner map, which the coordinator installs behind a park
    barrier (kind ["auto"], counted in [stats.repartitions]).  Rate
    limiting and hysteresis are the controller's responsibility — the
    engine applies whatever it returns. *)

val alloc_probe : ?commits:int -> unit -> float
(** Marginal heap bytes allocated per committed transaction on the
    steady-state Protocol B commit path: a single-domain loop (one
    write + one own-segment read per transaction, publication deferred,
    trace and outcome recording off) measured via [Gc.allocated_bytes]
    deltas, with periodic watermark/prune maintenance inside the
    measured window so in-place compaction absorbs all growth.  The
    zero-allocation gate in [test_runtime.ml] asserts this is exactly
    [0.]. *)
