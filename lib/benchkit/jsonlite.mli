(** A small JSON value type with an emitter and a parser, sufficient for
    the benchmark reports ([BENCH_hot_paths.json]) and the CI regression
    gate that reads them back.  Deliberately dependency-free: the toolchain
    ships no JSON library and the grammar we need is the one we emit. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_of_int : int -> t

val to_string : t -> string
(** Pretty-printed, two-space indent, trailing newline.  Non-finite
    numbers (JSON has no token for them) emit as [null]. *)

val to_file : string -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_file : string -> t

val member : string -> t -> t option
(** Field of an object; [None] elsewhere. *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val number : t -> float option
