(** A small JSON value type with an emitter and a parser, sufficient for
    the benchmark reports ([BENCH_hot_paths.json]) and the CI regression
    gate that reads them back.  Deliberately dependency-free: the toolchain
    ships no JSON library and the grammar we need is the one we emit. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_of_int : int -> t

val schema_version : int
(** Version of every JSON document this tree emits.  Bumped when a
    report's shape changes incompatibly; readers tolerate unknown fields
    (the parser keeps them, the accessors ignore them), so additions
    don't bump it. *)

val with_schema : (string * t) list -> t
(** An object with [schema_version] prepended — the constructor every
    emitted report goes through. *)

val schema_of : t -> int option
(** The document's [schema_version] field, if it is an integer.  Old
    documents (pre-versioning) return [None]; readers treat that as
    version 1. *)

val to_string : t -> string
(** Pretty-printed, two-space indent, trailing newline.  Non-finite
    numbers (JSON has no token for them) emit as [null]. *)

val to_file : string -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_file : string -> t

val member : string -> t -> t option
(** Field of an object; [None] elsewhere. *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val number : t -> float option
