module Trace = Hdd_obs.Trace
module Metrics = Hdd_obs.Metrics

let protocol_name = function Trace.A -> "A" | Trace.B -> "B" | Trace.C -> "C"

let kind_name = function
  | Trace.Update i -> Printf.sprintf "update(T%d)" i
  | Trace.Read_only -> "read_only"
  | Trace.Hosted b -> Printf.sprintf "hosted(T%d)" b
  | Trace.Adhoc _ -> "adhoc"

let num = Jsonlite.num_of_int

let instant ~name ~at ~tid args =
  Jsonlite.Obj
    ([ ("name", Jsonlite.Str name);
       ("ph", Jsonlite.Str "i");
       ("s", Jsonlite.Str "t");
       ("ts", num at);
       ("pid", num 0);
       ("tid", num tid) ]
    @ if args = [] then [] else [ ("args", Jsonlite.Obj args) ])

let slice ~name ~start ~finish ~tid args =
  Jsonlite.Obj
    ([ ("name", Jsonlite.Str name);
       ("cat", Jsonlite.Str "txn");
       ("ph", Jsonlite.Str "X");
       ("ts", num start);
       ("dur", num (Int.max 0 (finish - start)));
       ("pid", num 0);
       ("tid", num tid) ]
    @ if args = [] then [] else [ ("args", Jsonlite.Obj args) ])

let int_list l = Jsonlite.List (List.map num l)

let chrome_trace_of_records records =
  (* transaction slices: Begin .. Commit/Abort, matched by id *)
  let begins : (int, int * Trace.txn_kind) Hashtbl.t = Hashtbl.create 64 in
  let events = ref [] in
  let push e = events := e :: !events in
  List.iter
    (fun (r : Trace.record) ->
      let at = r.Trace.at in
      match r.Trace.ev with
      | Trace.Begin { txn; kind; init } ->
        Hashtbl.replace begins txn (init, kind)
      | Trace.Commit { txn; at = fin } | Trace.Abort { txn; at = fin } ->
        let verdict =
          match r.Trace.ev with Trace.Commit _ -> "commit" | _ -> "abort"
        in
        (match Hashtbl.find_opt begins txn with
        | Some (init, kind) ->
          Hashtbl.remove begins txn;
          push
            (slice
               ~name:(Printf.sprintf "txn %d %s" txn (kind_name kind))
               ~start:init ~finish:fin ~tid:txn
               [ ("outcome", Jsonlite.Str verdict) ])
        | None ->
          push
            (instant ~name:(verdict ^ " (unmatched)") ~at ~tid:txn []))
      | Trace.Read { txn; protocol; segment; key; threshold; version } ->
        push
          (instant
             ~name:
               (Printf.sprintf "read %s D%d/%d" (protocol_name protocol)
                  segment key)
             ~at ~tid:txn
             [ ("threshold", num threshold); ("version", num version) ])
      | Trace.Write { txn; segment; key; ts } ->
        push
          (instant
             ~name:(Printf.sprintf "write D%d/%d" segment key)
             ~at ~tid:txn
             [ ("ts", num ts) ])
      | Trace.Block { txn; protocol; segment; key; on } ->
        push
          (instant
             ~name:
               (Printf.sprintf "block %s D%d/%d" (protocol_name protocol)
                  segment key)
             ~at ~tid:txn
             [ ("on", int_list on) ])
      | Trace.Reject { txn; stage; segment; reason; _ } ->
        push
          (instant
             ~name:
               (Printf.sprintf "reject[%s] D%d"
                  (match stage with
                  | Trace.Routing -> "routing"
                  | Trace.Barrier -> "barrier"
                  | Trace.Rule -> "rule")
                  segment)
             ~at ~tid:txn
             [ ("reason", Jsonlite.Str reason) ])
      | Trace.Wall_release { m; released_at; components } ->
        push
          (instant ~name:"wall release" ~at:released_at ~tid:0
             [ ("m", num m);
               ("components", int_list (Array.to_list components)) ])
      | Trace.Wall_blocked { on } ->
        push (instant ~name:"wall blocked" ~at ~tid:0 [ ("on", num on) ])
      | Trace.Gc { watermark; vector; dropped } ->
        push
          (instant ~name:"gc" ~at ~tid:0
             [ ("watermark", num watermark);
               ("vector", int_list (Array.to_list vector));
               ("dropped", num dropped) ])
      | Trace.Seg_gc { segment; dropped } ->
        push
          (instant
             ~name:(Printf.sprintf "gc D%d" segment)
             ~at ~tid:0
             [ ("dropped", num dropped) ])
      | Trace.Registry_prune { upto; records_dropped; windows_dropped } ->
        push
          (instant ~name:"registry prune" ~at ~tid:0
             [ ("upto", num upto);
               ("records", num records_dropped);
               ("windows", num windows_dropped) ])
      | Trace.Sim { label; txn } ->
        push (instant ~name:("sim " ^ label) ~at ~tid:(Int.max 0 txn) [])
      | Trace.Durable_ack { txn; at = fin } ->
        push (instant ~name:"durable ack" ~at ~tid:txn [ ("at", num fin) ])
      | Trace.Durable_recovered { txn; at = fin } ->
        push
          (instant ~name:"durable recovered" ~at ~tid:txn [ ("at", num fin) ])
      | Trace.Recovery_complete { last_time } ->
        push
          (instant ~name:"recovery complete" ~at ~tid:0
             [ ("last_time", num last_time) ])
      | Trace.Checkpoint_cut { seq; components } ->
        push
          (instant ~name:"checkpoint cut" ~at ~tid:0
             [ ("seq", num seq);
               ("wall", int_list (Array.to_list components)) ])
      | Trace.Repartition { epoch; kind; moved; fresh_store } ->
        push
          (instant
             ~name:(Printf.sprintf "repartition %s" kind)
             ~at ~tid:0
             [ ("epoch", num epoch);
               ("moved", int_list moved);
               ("fresh_store", num (if fresh_store then 1 else 0)) ])
      | Trace.Escalation { seq; modes } ->
        push
          (instant ~name:"escalation" ~at ~tid:0
             [ ("seq", num seq); ("modes", int_list modes) ])
      | Trace.Note s -> push (instant ~name:("note: " ^ s) ~at ~tid:0 []))
    records;
  (* still-active transactions: zero-duration slices at their begin *)
  Hashtbl.iter
    (fun txn (init, kind) ->
      push
        (slice
           ~name:(Printf.sprintf "txn %d %s" txn (kind_name kind))
           ~start:init ~finish:init ~tid:txn
           [ ("outcome", Jsonlite.Str "active") ]))
    begins;
  Jsonlite.with_schema
    [ ("traceEvents", Jsonlite.List (List.rev !events));
      ("displayTimeUnit", Jsonlite.Str "ms") ]

let chrome_trace trace = chrome_trace_of_records (Trace.records trace)

let metrics_json metrics =
  Jsonlite.Obj
    (List.map
       (fun (name, snap) ->
         let v =
           match snap with
           | Metrics.Counter n -> num n
           | Metrics.Gauge g -> Jsonlite.Num g
           | Metrics.Histogram { count; sum; buckets } ->
             Jsonlite.Obj
               [ ("count", num count);
                 ("sum", Jsonlite.Num sum);
                 ("buckets",
                  Jsonlite.List
                    (List.map
                       (fun (bound, n) ->
                         Jsonlite.List [ Jsonlite.Num bound; num n ])
                       buckets)) ]
         in
         (name, v))
       (Metrics.snapshot metrics))
