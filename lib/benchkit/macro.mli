(** The hot-path macro-benchmark behind [hdd_cli bench].

    Two halves, one JSON report ([BENCH_hot_paths.json]):

    - {b before/after micro comparisons} of the four optimized paths —
      registry queries (incremental index vs log scan), critical-path
      lookup (precomputed matrix vs per-call DFS), activity-link
      composition (generation-stamped cache vs recomputation over the
      scans) and version lookup (array chain vs list chain) — plus the
      combined cross-class read path the acceptance criterion names.
      The "before" side calls the retained pre-PR reference
      implementations, so the comparison stays honest as both sides
      evolve.
    - a {b closed-loop mixed workload} on the depth-8 chain partition:
      a fixed multiprogramming level of update transactions (Protocols
      A and B) and read-only transactions (Protocol C), reporting
      ops/sec, per-protocol p50/p99 transaction latency, and
      chain-length / registry-size telemetry — the steady state the
      wall-driven GC is supposed to keep bounded. *)

val ns_per_op : (unit -> 'a) -> float
(** Adaptive timing loop: at least 20 ms of work per measurement. *)

val legacy_a_fn :
  Hdd_core.Activity.ctx -> from_class:int -> to_class:int -> Time.t -> Time.t
(** The pre-PR activity-link composition: per-call DFS over the
    reduction, registry scans at every step.  Oracle-checked against
    {!Hdd_core.Activity.a_fn} before every timed run. *)

val run : ?quick:bool -> unit -> Jsonlite.t
(** The full report.  [quick] shrinks the fixtures and the closed loop
    (~10x) for per-push CI.  The closed loop's telemetry (commits,
    blocked/rejected aborts) is counted through {!Hdd_obs.Metrics} and
    the report carries the registry snapshot under [macro.metrics]. *)

val obs_overhead : ?quick:bool -> ?runs:int -> unit -> Jsonlite.t
(** Run the closed-loop macro three ways — no trace attached, trace
    attached but disabled (the always-on profile: hooks compiled in,
    metrics registry wired, ring off) and tracing fully on (enabled ring
    + the standard metrics bridge) — best-of-[runs] (default 3) per
    side, rounds interleaved against machine-load swings.  Reports
    [{off_txns_per_sec; disabled_txns_per_sec; on_txns_per_sec;
    disabled_overhead_frac; overhead_frac}]; [disabled_overhead_frac] is
    the number the nightly <3% gate checks, the fully-on figure is
    published ungated (it is the diagnostic mode, and on transactions
    this cheap it costs ~8%). *)

val regressions :
  baseline:Jsonlite.t ->
  current:Jsonlite.t ->
  max_regression:float ->
  (string * float * float) list
(** Gated throughput metrics whose current value fell more than
    [max_regression] (a fraction) below the baseline:
    [(metric, baseline, current)].  Metrics missing on either side are
    skipped — the gate never fails on schema drift alone. *)
