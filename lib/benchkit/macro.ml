module Partition = Hdd_core.Partition
module Activity = Hdd_core.Activity
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Chain = Hdd_mvstore.Chain
module Achain = Hdd_mvstore.Achain
module Store = Hdd_mvstore.Store
module Prng = Hdd_util.Prng
module J = Jsonlite

(* --- timing --- *)

let ns_per_op f =
  for _ = 1 to 100 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let rec go iters =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.02 && iters < 50_000_000 then go (iters * 10)
    else dt *. 1e9 /. float_of_int iters
  in
  go 1000

let ops_per_sec ns = 1e9 /. ns

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(Int.min (n - 1) (p * n / 100))

(* --- the pre-PR cross-class threshold: per-call DFS + registry scan --- *)

let legacy_a_fn (ctx : Activity.ctx) ~from_class ~to_class m =
  if from_class = to_class then m
  else
    match
      Partition.critical_path_search ctx.Activity.partition from_class
        to_class
    with
    | None -> invalid_arg "legacy_a_fn: no critical path"
    | Some [] | Some [ _ ] -> m
    | Some (_ :: rest) ->
      List.fold_left
        (fun acc cls ->
          Registry.i_old_scan ctx.Activity.registry ~class_id:cls ~at:acc)
        m rest

(* --- before/after micro comparisons on the four optimized paths --- *)

let pair_json ~before_ns ~after_ns =
  J.Obj
    [ ("before_ns", J.Num before_ns);
      ("after_ns", J.Num after_ns);
      ("speedup", J.Num (before_ns /. after_ns)) ]

let hot_paths ~quick =
  let depth = 8 in
  let finished = if quick then 400 else 2000 in
  let chain_versions = if quick then 64 else 256 in
  let ctx, now = Fixtures.populated_ctx ~finished ~depth () in
  (* a query point inside class 0's busy interval, so the scan walks the
     class log instead of falling off either end *)
  let m = now / depth in
  let reg = ctx.Activity.registry in
  (* sanity: the fast paths must agree with the references before we
     time them *)
  assert (
    Registry.i_old reg ~class_id:0 ~at:m
    = Registry.i_old_scan reg ~class_id:0 ~at:m);
  assert (
    Activity.a_fn ctx ~from_class:0 ~to_class:(depth - 1) m
    = legacy_a_fn ctx ~from_class:0 ~to_class:(depth - 1) m);
  let registry_before =
    ns_per_op (fun () -> Registry.i_old_scan reg ~class_id:0 ~at:m)
  in
  let registry_after =
    ns_per_op (fun () -> Registry.i_old reg ~class_id:0 ~at:m)
  in
  let p = ctx.Activity.partition in
  let cp_before =
    ns_per_op (fun () -> Partition.critical_path_search p 0 (depth - 1))
  in
  let cp_after =
    ns_per_op (fun () -> Partition.critical_path p 0 (depth - 1))
  in
  let act_before =
    ns_per_op (fun () ->
        legacy_a_fn ctx ~from_class:0 ~to_class:(depth - 1) m)
  in
  let act_after =
    ns_per_op (fun () ->
        Activity.a_fn ctx ~from_class:0 ~to_class:(depth - 1) m)
  in
  (* chains whose timestamps span the registry's clock, as they would
     after a long run; the threshold lands deep in the history *)
  let stride = Int.max 1 (now / chain_versions) in
  let lchain = Fixtures.list_chain ~stride ~versions:chain_versions () in
  let achain = Fixtures.array_chain ~stride ~versions:chain_versions () in
  let th = Activity.a_fn ctx ~from_class:0 ~to_class:(depth - 1) m in
  let chain_before =
    ns_per_op (fun () -> Chain.committed_before lchain ~ts:th)
  in
  let chain_after =
    ns_per_op (fun () -> Achain.committed_before achain ~ts:th)
  in
  (* the acceptance path: full cross-class read — threshold composition
     plus version lookup — before vs after *)
  let read_before =
    ns_per_op (fun () ->
        Chain.committed_before lchain
          ~ts:(legacy_a_fn ctx ~from_class:0 ~to_class:(depth - 1) m))
  in
  let read_after =
    ns_per_op (fun () ->
        Achain.committed_before achain
          ~ts:(Activity.a_fn ctx ~from_class:0 ~to_class:(depth - 1) m))
  in
  J.Obj
    [ ("registry_i_old", pair_json ~before_ns:registry_before ~after_ns:registry_after);
      ("partition_critical_path", pair_json ~before_ns:cp_before ~after_ns:cp_after);
      ("activity_links", pair_json ~before_ns:act_before ~after_ns:act_after);
      ("chain_lookup", pair_json ~before_ns:chain_before ~after_ns:chain_after);
      ( "cross_class_read",
        J.Obj
          [ ("before_ops_per_sec", J.Num (ops_per_sec read_before));
            ("after_ops_per_sec", J.Num (ops_per_sec read_after));
            ("speedup", J.Num (read_before /. read_after)) ] ) ]

(* --- the closed-loop macro-benchmark --- *)

type kind = A_heavy | B_update of int | C_readonly

type live = {
  txn : Txn.t;
  kind : kind;
  mutable ops : (bool * Granule.t) list;  (** (is_write, granule) *)
  started : float;
}

type bucket = {
  mutable lat : float list;
  mutable txns : int;
  mutable ops_done : int;
}

let bucket () = { lat = []; txns = 0; ops_done = 0 }

let bucket_json b =
  let lat = Array.of_list b.lat in
  Array.sort compare lat;
  let us x = x *. 1e6 in
  J.Obj
    [ ("txns", J.num_of_int b.txns);
      ("ops", J.num_of_int b.ops_done);
      ("p50_us", J.Num (us (percentile lat 50)));
      ("p99_us", J.Num (us (percentile lat 99))) ]

let macro ?trace ~quick () =
  let depth = 8 in
  let keys = 4 in
  let target = if quick then 3_000 else 30_000 in
  let mpl = 6 in
  let partition = Fixtures.chain_partition depth in
  let store = Store.create ~segments:depth ~init:(fun _ -> 0) in
  let clock = Time.Clock.create () in
  let sched = Scheduler.create ?trace ~partition ~clock ~store () in
  (* benchmark telemetry goes through the metrics registry; with [trace]
     the standard event bridge feeds the same registry, which is the
     "metrics on" configuration the obs-overhead gate measures *)
  let bm = Hdd_obs.Metrics.create () in
  (match trace with
  | Some tr -> Hdd_obs.Metrics.attach bm tr
  | None -> ());
  let g = Prng.create 42 in
  let gran seg = Granule.make ~segment:seg ~key:(Prng.int g keys) in
  let spawn () =
    let roll = Prng.int g 100 in
    if roll < 55 then begin
      let cls = Prng.int g depth in
      { txn = Scheduler.begin_update sched ~class_id:cls;
        kind = B_update cls;
        ops =
          [ (false, gran cls); (true, gran cls); (false, gran cls);
            (true, gran cls) ];
        started = Unix.gettimeofday () }
    end
    else if roll < 85 then
      { txn = Scheduler.begin_update sched ~class_id:0;
        kind = A_heavy;
        ops =
          (List.init 4 (fun k -> (false, gran (depth - 1 - (k mod 4))))
          @ [ (true, gran 0) ]);
        started = Unix.gettimeofday () }
    else
      { txn = Scheduler.begin_read_only sched;
        kind = C_readonly;
        ops = List.init depth (fun s -> (false, gran s));
        started = Unix.gettimeofday () }
  in
  let a_bucket = bucket ()
  and b_bucket = bucket ()
  and c_bucket = bucket () in
  let bucket_of = function
    | A_heavy -> a_bucket
    | B_update _ -> b_bucket
    | C_readonly -> c_bucket
  in
  let blocked_aborts = Hdd_obs.Metrics.counter bm "bench.blocked_aborts"
  and rejected_aborts = Hdd_obs.Metrics.counter bm "bench.rejected_aborts"
  and committed = Hdd_obs.Metrics.counter bm "bench.committed" in
  let pool : live option array = Array.make mpl None in
  let t0 = Unix.gettimeofday () in
  let stalled = ref 0 in
  while Hdd_obs.Metrics.value committed < target && !stalled < 1_000_000 do
    incr stalled;
    let slot = Prng.int g mpl in
    match pool.(slot) with
    | None ->
      pool.(slot) <- Some (spawn ());
      stalled := 0
    | Some l -> (
      match l.ops with
      | [] ->
        Scheduler.commit sched l.txn;
        let b = bucket_of l.kind in
        b.txns <- b.txns + 1;
        b.lat <- (Unix.gettimeofday () -. l.started) :: b.lat;
        Hdd_obs.Metrics.incr committed;
        pool.(slot) <- None;
        stalled := 0
      | (is_write, gr) :: rest -> (
        let outcome =
          if is_write then
            match Scheduler.write sched l.txn gr 1 with
            | Outcome.Granted () -> `Ok
            | Outcome.Blocked _ -> `Blocked
            | Outcome.Rejected _ -> `Rejected
          else
            match Scheduler.read sched l.txn gr with
            | Outcome.Granted _ -> `Ok
            | Outcome.Blocked _ -> `Blocked
            | Outcome.Rejected _ -> `Rejected
        in
        match outcome with
        | `Ok ->
          (bucket_of l.kind).ops_done <- (bucket_of l.kind).ops_done + 1;
          l.ops <- rest;
          stalled := 0
        | (`Blocked | `Rejected) as why ->
          (* either way the driver aborts and the closed loop replaces
             the transaction; the split is reported as telemetry *)
          (match why with
          | `Blocked -> Hdd_obs.Metrics.incr blocked_aborts
          | `Rejected -> Hdd_obs.Metrics.incr rejected_aborts);
          Scheduler.abort sched l.txn;
          pool.(slot) <- None))
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total_ops =
    a_bucket.ops_done + b_bucket.ops_done + c_bucket.ops_done
  in
  let reg = Scheduler.registry sched in
  let records = ref 0
  and windows = ref 0 in
  for cls = 0 to depth - 1 do
    records := !records + Registry.record_count reg ~class_id:cls;
    windows := !windows + Registry.window_count reg ~class_id:cls
  done;
  let m = Scheduler.metrics sched in
  J.Obj
    [ ("elapsed_sec", J.Num elapsed);
      ("ops_per_sec", J.Num (float_of_int total_ops /. elapsed));
      ( "txns_per_sec",
        J.Num (float_of_int (Hdd_obs.Metrics.value committed) /. elapsed) );
      ("protocol_A", bucket_json a_bucket);
      ("protocol_B", bucket_json b_bucket);
      ("protocol_C", bucket_json c_bucket);
      ("blocked_aborts", J.num_of_int (Hdd_obs.Metrics.value blocked_aborts));
      ("rejected_aborts", J.num_of_int (Hdd_obs.Metrics.value rejected_aborts));
      ("metrics", Obs_export.metrics_json bm);
      ( "telemetry",
        J.Obj
          [ ("max_chain_length", J.num_of_int (Store.max_chain_length store));
            ("store_versions", J.num_of_int (Store.version_count store));
            ("registry_records", J.num_of_int !records);
            ("registry_windows", J.num_of_int !windows);
            ("reads_a", J.num_of_int m.Scheduler.reads_a);
            ("reads_b", J.num_of_int m.Scheduler.reads_b);
            ("reads_c", J.num_of_int m.Scheduler.reads_c);
            ("read_registrations", J.num_of_int m.Scheduler.read_registrations)
          ] ) ]

let run ?(quick = false) () =
  J.with_schema
    [ ( "meta",
        J.Obj
          [ ("schema", J.num_of_int 1);
            ("quick", J.Bool quick);
            ("depth", J.num_of_int 8);
            ( "note",
              J.Str
                "before numbers come from the retained pre-PR reference \
                 implementations (Registry.*_scan, \
                 Partition.*_search, list-backed Chain)" ) ] );
      ("hot_paths", hot_paths ~quick);
      ("macro", macro ~quick ()) ]

(* --- the observability-overhead gate --- *)

let obs_overhead ?(quick = false) ?(runs = 3) () =
  let tps ?trace () =
    match
      Option.bind (J.path [ "txns_per_sec" ] (macro ?trace ~quick ())) J.number
    with
    | Some v -> v
    | None -> 0.
  in
  (* best-of-N per side, the rounds interleaved off/disabled/on so a
     machine-load swing degrades every side alike instead of whichever
     block it lands on: the gate measures systematic emission cost, not
     scheduler noise *)
  let off = ref 0.
  and disabled = ref 0.
  and on = ref 0. in
  for _ = 1 to runs do
    off := Float.max !off (tps ());
    (disabled :=
       let trace = Hdd_obs.Trace.create () in
       Hdd_obs.Trace.disable trace;
       Float.max !disabled (tps ~trace ()));
    on :=
      let trace = Hdd_obs.Trace.create () in
      Float.max !on (tps ~trace ())
  done;
  let off = !off
  and disabled = !disabled
  and on = !on in
  let frac x = if off > 0. then 1. -. (x /. off) else 0. in
  J.with_schema
    [ ("off_txns_per_sec", J.Num off);
      ("disabled_txns_per_sec", J.Num disabled);
      ("on_txns_per_sec", J.Num on);
      ("disabled_overhead_frac", J.Num (frac disabled));
      ("overhead_frac", J.Num (frac on)) ]

(* --- the regression gate --- *)

let gated_metrics =
  [ [ "macro"; "ops_per_sec" ];
    [ "macro"; "txns_per_sec" ];
    [ "hot_paths"; "cross_class_read"; "after_ops_per_sec" ] ]

let regressions ~baseline ~current ~max_regression =
  List.filter_map
    (fun keys ->
      match
        ( Option.bind (J.path keys baseline) J.number,
          Option.bind (J.path keys current) J.number )
      with
      | Some base, Some cur
        when cur < base *. (1. -. max_regression) ->
        Some (String.concat "." keys, base, cur)
      | _ -> None)
    gated_metrics
