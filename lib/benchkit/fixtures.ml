module Partition = Hdd_core.Partition
module Spec = Hdd_core.Spec
module Activity = Hdd_core.Activity
module Chain = Hdd_mvstore.Chain
module Achain = Hdd_mvstore.Achain

let chain_partition depth =
  Partition.build_exn
    (Spec.make
       ~segments:(List.init depth (fun i -> Printf.sprintf "s%d" i))
       ~types:
         (List.init depth (fun i ->
              Spec.txn_type
                ~name:(Printf.sprintf "c%d" i)
                ~writes:[ i ]
                ~reads:(List.init (depth - i) (fun k -> i + k)))))

let branch_partition branches =
  Partition.build_exn
    (Spec.make
       ~segments:
         (List.init branches (fun i -> Printf.sprintf "b%d" i) @ [ "base" ])
       ~types:
         (Spec.txn_type ~name:"feed" ~writes:[ branches ] ~reads:[]
          :: List.init branches (fun i ->
                 Spec.txn_type
                   ~name:(Printf.sprintf "d%d" i)
                   ~writes:[ i ]
                   ~reads:[ i; branches ])))

let populated_registry ?(finished = 40) ?(active = 2) ~classes () =
  let registry = Registry.create ~classes () in
  let clock = Time.Clock.create () in
  let per_class = finished + active in
  for cls = 0 to classes - 1 do
    for k = 0 to per_class - 1 do
      let txn =
        Txn.make
          ~id:((cls * (per_class + 1)) + k + 1)
          ~kind:(Txn.Update cls)
          ~init:(Time.Clock.tick clock)
      in
      Registry.register registry txn;
      if k < finished then Txn.commit txn ~at:(Time.Clock.tick clock)
    done
  done;
  (registry, clock)

let populated_ctx ?finished ?active ~depth () =
  let partition = chain_partition depth in
  let registry, clock =
    populated_registry ?finished ?active ~classes:depth ()
  in
  (Activity.make_ctx partition registry, Time.Clock.now clock)

let list_chain ?(stride = 2) ~versions () =
  let c = Chain.create ~initial:0 in
  for ts = 1 to versions do
    ignore (Chain.install c ~ts:(stride * ts) ~writer:ts ~value:ts);
    Chain.commit c ~ts:(stride * ts)
  done;
  c

let array_chain ?(stride = 2) ~versions () =
  let c = Achain.create ~initial:0 in
  for ts = 1 to versions do
    ignore (Achain.install c ~ts:(stride * ts) ~writer:ts ~value:ts);
    Achain.commit c ~ts:(stride * ts)
  done;
  c
