(** Shared benchmark fixtures, parameterized where the old copies in
    [bench/main.ml] hard-coded their steady state (40 finished + 2 active
    transactions per class).  Both the Bechamel microbenchmarks and the
    [hdd_cli bench] macro-benchmark build their worlds from here, so the
    two suites cannot drift apart again. *)

val chain_partition : int -> Hdd_core.Partition.t
(** A depth-[n] linear hierarchy: class [i] writes segment [i] and reads
    every segment above it — the worst case for activity-link
    composition length. *)

val branch_partition : int -> Hdd_core.Partition.t
(** [n] independent branches over one shared base segment. *)

val populated_registry :
  ?finished:int -> ?active:int -> classes:int -> unit -> Registry.t * Time.Clock.clock
(** A registry in steady state: per class, [finished] committed
    transactions (default 40) and [active] still-running ones (default
    2).  [finished] is the knob that scales registry depth for the
    scan-vs-index comparisons. *)

val populated_ctx :
  ?finished:int ->
  ?active:int ->
  depth:int ->
  unit ->
  Hdd_core.Activity.ctx * Time.t
(** {!populated_registry} over a {!chain_partition}, wrapped in an
    activity context; also returns the clock's current time as a
    representative query point. *)

val list_chain : ?stride:int -> versions:int -> unit -> int Hdd_mvstore.Chain.t
(** A committed list-backed version chain (the pre-PR representation).
    Timestamps are [stride, 2*stride, ...] (default stride 2) so lookups
    can be aimed anywhere in the chain's history. *)

val array_chain : ?stride:int -> versions:int -> unit -> int Hdd_mvstore.Achain.t
(** The same chain in the array-backed representation the store serves. *)
