(** Serialisers for the observability layer — kept here rather than in
    [hdd_obs] so the trace core stays dependency-free while the export
    path reuses {!Jsonlite}.

    {!chrome_trace} renders a trace in the Chrome trace-event format
    ([chrome://tracing] / Perfetto): one complete ("X") slice per
    transaction from its [Begin] to its [Commit]/[Abort] (still-active
    transactions get a zero-duration slice), and one instant ("i") event
    per read, write, block, rejection, wall release and collection.
    Logical simulation time is reported as microseconds. *)

val chrome_trace : Hdd_obs.Trace.t -> Jsonlite.t
(** [{"traceEvents": [...]}] over the records currently retained. *)

val chrome_trace_of_records : Hdd_obs.Trace.record list -> Jsonlite.t
(** The same rendering over an already-drained record list — what the
    sharded cluster's merged traces export through. *)

val metrics_json : Hdd_obs.Metrics.t -> Jsonlite.t
(** The {!Hdd_obs.Metrics.snapshot}, name-sorted: counters and gauges as
    numbers, histograms as [{count; sum; buckets: [[bound, n], ...]}]
    (the open bucket's bound emits as [null]). *)
