type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_of_int i = Num (float_of_int i)

(* --- schema versioning --- *)

let schema_version = 2

let with_schema fields =
  Obj (("schema_version", num_of_int schema_version) :: fields)

let schema_of = function
  | Obj fields -> (
    match List.assoc_opt "schema_version" fields with
    | Some (Num f) when Float.is_integer f -> Some (int_of_float f)
    | _ -> None)
  | _ -> None

(* --- emission --- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let emit_number b f =
  (* JSON has no nan/infinity tokens; degrade to null rather than emit an
     unparseable document *)
  if Float.is_finite f then Buffer.add_string b (number_to_string f)
  else Buffer.add_string b "null"

let rec emit b indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Num f -> emit_number b f
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        emit b (indent + 2) x)
      xs;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string b ",\n";
        pad (indent + 2);
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\": ";
        emit b (indent + 2) x)
      kvs;
    Buffer.add_char b '\n';
    pad indent;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* --- parsing (recursive descent over the grammar we emit) --- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "expected %c at %d, found %c" c !pos c'
    | None -> parse_error "expected %c at %d, found end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else parse_error "invalid literal at %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then parse_error "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* we only emit codes below 0x20; wider input degrades to '?' *)
          Buffer.add_char b (if code < 128 then Char.chr code else '?')
        | _ -> parse_error "bad escape at %d" !pos);
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> parse_error "bad number at %d" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at %d" !pos
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> parse_error "expected ',' or '}' at %d" !pos
        in
        Obj (members [])
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing input at %d" !pos;
  v

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

(* --- navigation --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let rec path keys v =
  match keys with
  | [] -> Some v
  | k :: rest -> ( match member k v with Some v -> path rest v | None -> None)

let number = function Num f -> Some f | _ -> None
