type counter = int ref
type gauge = float ref

type histogram = {
  bounds : float array;  (** ascending upper bounds; implicit +inf last *)
  buckets : int array;  (** length = Array.length bounds + 1 *)
  mutable count : int;
  mutable sum : float;
}

type metric = C of counter | G of gauge | H of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let clash name = invalid_arg (Printf.sprintf "Metrics: %s has another kind" name)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some _ -> clash name
  | None ->
    let c = ref 0 in
    Hashtbl.add t.tbl name (C c);
    c

let incr c = Stdlib.incr c
let add c n = c := !c + n
let value c = !c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (G g) -> g
  | Some _ -> clash name
  | None ->
    let g = ref 0. in
    Hashtbl.add t.tbl name (G g);
    g

let set g v = g := v
let gauge_value g = !g

let default_buckets = Array.init 21 (fun i -> Float.of_int (1 lsl i))

(* Finer geometric grid (×1.25 per step from 0.5) for latency
   distributions: the power-of-two default is too coarse for a p999
   read off bucket upper bounds. *)
let latency_buckets = Array.init 64 (fun i -> 0.5 *. (1.25 ** Float.of_int i))

let histogram ?(buckets = default_buckets) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some _ -> clash name
  | None ->
    let h =
      { bounds = Array.copy buckets;
        buckets = Array.make (Array.length buckets + 1) 0;
        count = 0;
        sum = 0. }
    in
    Hashtbl.add t.tbl name (H h);
    h

let observe h x =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || x <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. x

let hist_count h = h.count
let hist_sum h = h.sum

let quantile h q =
  if h.count = 0 then 0.
  else begin
    let rank = Float.to_int (Float.of_int (h.count - 1) *. q) in
    let rec go i seen =
      if i >= Array.length h.buckets then infinity
      else
        let seen = seen + h.buckets.(i) in
        if seen > rank then
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        else go (i + 1) seen
    in
    go 0 0
  end

let p50 h = quantile h 0.50
let p99 h = quantile h 0.99
let p999 h = quantile h 0.999

type snap =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

let snap_of = function
  | C c -> Counter !c
  | G g -> Gauge !g
  | H h ->
    let bounds = Array.to_list h.bounds @ [ infinity ] in
    Histogram
      { count = h.count;
        sum = h.sum;
        buckets = List.mapi (fun i b -> (b, h.buckets.(i))) bounds }

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, snap_of m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name = Option.map snap_of (Hashtbl.find_opt t.tbl name)

(* --- the standard trace bridge --- *)

let attach t trace =
  let begins = counter t "txn.begins"
  and commits = counter t "txn.commits"
  and aborts = counter t "txn.aborts"
  and reads_a = counter t "reads.a"
  and reads_b = counter t "reads.b"
  and reads_c = counter t "reads.c"
  and writes = counter t "writes"
  and blocks = counter t "blocks"
  and rejects = counter t "rejects"
  and wall_releases = counter t "wall.releases"
  and wall_blocked = counter t "wall.blocked"
  and gc_collections = counter t "gc.collections"
  and gc_dropped = counter t "gc.versions_dropped"
  and gc_hist = histogram t "gc.dropped_per_collection"
  and pruned_records = counter t "registry.pruned_records"
  and pruned_windows = counter t "registry.pruned_windows"
  and durable_acks = counter t "durable.acks"
  and durable_recovered = counter t "durable.recovered"
  and recoveries = counter t "durable.recoveries"
  and checkpoint_cuts = counter t "checkpoint.cuts"
  and repartitions = counter t "adapt.repartitions"
  and escalations = counter t "hybrid.escalations" in
  Trace.subscribe trace (fun (r : Trace.record) ->
      match r.Trace.ev with
      | Trace.Begin _ -> incr begins
      | Trace.Commit _ -> incr commits
      | Trace.Abort _ -> incr aborts
      | Trace.Read { protocol; _ } ->
        incr
          (match protocol with
          | Trace.A -> reads_a
          | Trace.B -> reads_b
          | Trace.C -> reads_c)
      | Trace.Write _ -> incr writes
      | Trace.Block _ -> incr blocks
      | Trace.Reject _ -> incr rejects
      | Trace.Wall_release _ -> incr wall_releases
      | Trace.Wall_blocked _ -> incr wall_blocked
      | Trace.Gc { dropped; _ } ->
        incr gc_collections;
        add gc_dropped dropped;
        observe gc_hist (Float.of_int dropped)
      | Trace.Seg_gc _ -> ()
      | Trace.Registry_prune { records_dropped; windows_dropped; _ } ->
        add pruned_records records_dropped;
        add pruned_windows windows_dropped
      | Trace.Sim { label; _ } -> incr (counter t ("sim." ^ label))
      | Trace.Durable_ack _ -> incr durable_acks
      | Trace.Durable_recovered _ -> incr durable_recovered
      | Trace.Recovery_complete _ -> incr recoveries
      | Trace.Checkpoint_cut _ -> incr checkpoint_cuts
      | Trace.Repartition _ -> incr repartitions
      | Trace.Escalation _ -> incr escalations
      | Trace.Note _ -> ())
