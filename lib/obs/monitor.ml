exception Violation of string

type txn_info = {
  kind : Trace.txn_kind;
  init : int;
  wall : int array option;
      (** resolved wall components for a walled read-only transaction *)
  mutable pending : (int * int * int) list;  (** (segment, key, ts) *)
  mutable used : (int * int) list;  (** (segment, threshold) observed *)
}

type t = {
  raise_on_violation : bool;
  wall_rule : [ `Latest | `Any_released ];
  durability_only : bool;
  mutable violations : string list;  (** newest first *)
  active : (int, txn_info) Hashtbl.t;
  committed : (int * int, int list) Hashtbl.t;
      (** (segment, key) -> committed version timestamps, descending *)
  mutable walls : (int * int array) list;
      (** (released_at, components), newest first *)
  acked : (int * int, unit) Hashtbl.t;
      (** (txn, at) acknowledged as durable — must survive every
          subsequent recovery *)
  recovered_now : (int * int, unit) Hashtbl.t;
      (** (txn, at) replayed by the recovery in progress *)
  mutable last_cut : (int * int array) option;
      (** newest checkpoint cut: (seq, wall components) *)
  mutable last_epoch : int;
      (** newest partition epoch entered; 0 before any {!Trace.event.Repartition} *)
  mutable last_esc_seq : int;
      (** newest escalation sequence number; 0 before any {!Trace.event.Escalation} *)
  mutable esc_modes : int array;
      (** per-class CC modes after the newest escalation; [||] (all
          classes plain HDD) before any *)
  mutable events_seen : int;
}

let create ?(raise_on_violation = true) ?(wall_rule = `Latest)
    ?(durability_only = false) () =
  { raise_on_violation;
    wall_rule;
    durability_only;
    violations = [];
    active = Hashtbl.create 64;
    committed = Hashtbl.create 256;
    walls = [];
    acked = Hashtbl.create 64;
    recovered_now = Hashtbl.create 64;
    last_cut = None;
    last_epoch = 0;
    last_esc_seq = 0;
    esc_modes = [||];
    events_seen = 0 }

let violations t = List.rev t.violations
let events_seen t = t.events_seen
let active_count t = Hashtbl.length t.active
let last_epoch t = t.last_epoch
let last_esc_seq t = t.last_esc_seq

let violate t fmt =
  Printf.ksprintf
    (fun msg ->
      t.violations <- msg :: t.violations;
      if t.raise_on_violation then raise (Violation msg))
    fmt

(* The scheduler's wall rule for a read-only transaction initiated at
   [init]: the newest wall released strictly before it, else the newest
   wall outright. *)
let wall_for t ~init =
  let rec go = function
    | [] -> (match t.walls with (_, c) :: _ -> Some c | [] -> None)
    | (released_at, components) :: rest ->
      if released_at < init then Some components else go rest
  in
  go t.walls

let committed_of t ~segment ~key =
  match Hashtbl.find_opt t.committed (segment, key) with
  | Some l -> l
  | None -> []

let record_use (info : txn_info) ~segment ~threshold =
  if not (List.mem (segment, threshold) info.used) then
    info.used <- (segment, threshold) :: info.used

(* Invariant 3, read side: the version served must sit strictly below the
   threshold, and no committed version the shadow knows may lie between
   them — otherwise the store skipped a newer legal version (timestamp
   order broken) or GC stole it (watermark broken). *)
let check_read t (r : Trace.record) ~txn ~protocol ~segment ~key ~threshold
    ~version =
  let proto = Trace.(match protocol with A -> "A" | B -> "B" | C -> "C") in
  if version >= threshold then
    violate t "event %d: protocol %s read of D%d/%d by txn %d: version %d \
               not below threshold %d"
      r.Trace.seq proto segment key txn version threshold;
  (match
     List.find_opt
       (fun ts -> ts > version && ts < threshold)
       (committed_of t ~segment ~key)
   with
  | Some newer ->
    violate t "event %d: protocol %s read of D%d/%d by txn %d served \
               version %d, but version %d < threshold %d is committed"
      r.Trace.seq proto segment key txn version newer threshold
  | None -> ());
  match Hashtbl.find_opt t.active txn with
  | None ->
    violate t "event %d: read by unknown transaction %d" r.Trace.seq txn
  | Some info ->
    record_use info ~segment ~threshold;
    (* a walled reader's threshold is pinned to its wall's component *)
    (match (info.kind, info.wall, t.wall_rule) with
    | Trace.Read_only, _, `Any_released ->
      (* Parallel runtime: a reader grabs the seqlock wall before
         ticking its initiation time, so by the time both events reach
         the merged trace any wall released before [init] is legal, not
         just the newest one. *)
      let applicable =
        List.filter
          (fun (released_at, components) ->
            released_at < info.init
            && segment >= 0
            && segment < Array.length components)
          t.walls
      in
      if
        applicable <> []
        && not
             (List.exists (fun (_, c) -> c.(segment) = threshold) applicable)
      then
        violate t "event %d: protocol C read of D%d by txn %d used \
                   threshold %d; no wall released before init %d has that \
                   component"
          r.Trace.seq segment txn threshold info.init
    | Trace.Read_only, Some components, `Latest ->
      if
        segment >= 0
        && segment < Array.length components
        && components.(segment) <> threshold
      then
        violate t "event %d: protocol C read of D%d by txn %d used \
                   threshold %d; its wall says %d"
          r.Trace.seq segment txn threshold components.(segment)
    | _ -> ())

(* Invariant 4: necessary conditions on a collection's threshold vector,
   from what the event stream alone reveals. *)
let check_gc t (r : Trace.record) ~vector =
  let bad s bound what =
    violate t "event %d: gc vector component D%d = %d above %s = %d"
      r.Trace.seq s vector.(s) what bound
  in
  (match t.walls with
  | (_, components) :: _ ->
    Array.iteri
      (fun s c -> if s < Array.length vector && vector.(s) > c then
          bad s c "current wall component")
      components
  | [] -> ());
  Hashtbl.iter
    (fun id (info : txn_info) ->
      (match info.kind with
      | Trace.Update cls ->
        if cls < Array.length vector && vector.(cls) > info.init then
          bad cls info.init
            (Printf.sprintf "active txn %d's initiation time" id)
      | Trace.Adhoc _ ->
        Array.iteri
          (fun s v ->
            if v > info.init then
              bad s info.init
                (Printf.sprintf "active ad-hoc txn %d's initiation time" id))
          vector
      | Trace.Hosted bottom ->
        if bottom < Array.length vector && vector.(bottom) > info.init then
          bad bottom info.init
            (Printf.sprintf "active hosted txn %d's initiation time" id)
      | Trace.Read_only -> (
        match info.wall with
        | Some components ->
          Array.iteri
            (fun s c ->
              if s < Array.length vector && vector.(s) > c then
                bad s c (Printf.sprintf "active reader %d's wall component" id))
            components
        | None -> ()));
      (* An escalated class reads the latest committed version: its
         emitted thresholds are one past the version served, never a
         repeatable MVTO bound, and GC always keeps the newest committed
         version per granule — so they do not pin the vector. *)
      let esc_own s =
        match info.kind with
        | Trace.Update cls ->
          s = cls && cls < Array.length t.esc_modes && t.esc_modes.(cls) <> 0
        | _ -> false
      in
      List.iter
        (fun (s, th) ->
          if
            s >= 0 && s < Array.length vector && vector.(s) > th
            && not (esc_own s)
          then bad s th (Printf.sprintf "threshold txn %d already used" id))
        info.used)
    t.active

(* Mirror Store.gc_wall on the shadow: per granule of segment [s], keep
   the newest committed timestamp below [vector.(s)] and everything above
   it.  Keeps the shadow in lockstep with the store, so later read checks
   stay exact, and bounds the monitor's memory. *)
let prune_shadow t ~vector =
  Hashtbl.iter
    (fun (segment, _key as g) tss ->
      if segment < Array.length vector then begin
        let floor = vector.(segment) in
        let rec cut = function
          | [] -> []
          | ts :: rest ->
            if ts < floor then [ ts ] (* newest below: keep, drop the rest *)
            else ts :: cut rest
        in
        Hashtbl.replace t.committed g (cut tss)
      end)
    t.committed

(* Invariant 5, durability: an acknowledged-durable commit survives every
   subsequent recovery, and checkpoint cuts are monotone — increasing
   sequence numbers, componentwise non-decreasing wall vectors. *)
let handle_durability t (r : Trace.record) =
  match r.Trace.ev with
  | Trace.Durable_ack { txn; at } -> Hashtbl.replace t.acked (txn, at) ()
  | Trace.Durable_recovered { txn; at } ->
    Hashtbl.replace t.recovered_now (txn, at) ()
  | Trace.Recovery_complete { last_time } ->
    Hashtbl.iter
      (fun (txn, at) () ->
        if not (Hashtbl.mem t.recovered_now (txn, at)) then
          violate t "event %d: acknowledged-durable commit of txn %d at %d \
                     lost across recovery (replayed up to %d)"
            r.Trace.seq txn at last_time)
      t.acked;
    Hashtbl.reset t.recovered_now
  | Trace.Checkpoint_cut { seq; components } ->
    (match t.last_cut with
    | Some (prev_seq, prev) ->
      if seq <= prev_seq then
        violate t "event %d: checkpoint sequence moved backwards: %d after %d"
          r.Trace.seq seq prev_seq;
      Array.iteri
        (fun s c ->
          if s < Array.length prev && c < prev.(s) then
            violate t "event %d: checkpoint %d wall component D%d moved \
                       backwards: %d after %d"
              r.Trace.seq seq s c prev.(s))
        components
    | None -> ());
    t.last_cut <- Some (seq, Array.copy components)
  | _ -> ()

(* Invariant 6, partition epochs: a repartition is only legal behind a
   quiescent barrier — strictly increasing epoch numbers and no
   transaction in flight when the swap lands.  A repair that rebuilt the
   physical store changes what segment ids mean, so the committed-version
   shadow and the released walls of the old epoch are retired with it;
   a pure ownership migration leaves both meanings intact. *)
let check_repartition t (r : Trace.record) ~epoch ~fresh_store =
  if epoch <= t.last_epoch then
    violate t "event %d: partition epoch moved backwards: %d after %d \
               (epochs are strictly increasing)"
      r.Trace.seq epoch t.last_epoch;
  if Hashtbl.length t.active > 0 then begin
    let ids =
      Hashtbl.fold (fun id _ acc -> id :: acc) t.active []
      |> List.sort compare |> List.map string_of_int |> String.concat ","
    in
    violate t "event %d: repartition to epoch %d with transactions [%s] \
               still in flight — the wall barrier must drain them first"
      r.Trace.seq epoch ids
  end;
  t.last_epoch <- epoch;
  if fresh_store then begin
    Hashtbl.reset t.committed;
    t.walls <- []
  end

(* Invariant 7, hybrid escalation: mode switches carry strictly
   increasing sequence numbers, and no update transaction of a class
   whose mode changes may be in flight when the switch lands.  This is
   deliberately weaker than the repartition rule's global quiescence:
   the serial hybrid scheduler applies a flip as soon as the affected
   classes drain, while the engine's full park barrier (which drains
   everyone) satisfies it a fortiori. *)
let check_escalation t (r : Trace.record) ~seq ~modes =
  if seq <= t.last_esc_seq then
    violate t "event %d: escalation sequence moved backwards: %d after %d \
               (sequence numbers are strictly increasing)"
      r.Trace.seq seq t.last_esc_seq;
  let next = Array.of_list modes in
  let mode_of v c = if c < Array.length v then v.(c) else 0 in
  let in_flight =
    Hashtbl.fold
      (fun id (info : txn_info) acc ->
        match info.kind with
        | Trace.Update cls when mode_of t.esc_modes cls <> mode_of next cls ->
          id :: acc
        | _ -> acc)
      t.active []
  in
  if in_flight <> [] then begin
    let ids =
      List.sort compare in_flight |> List.map string_of_int
      |> String.concat ","
    in
    violate t "event %d: escalation %d switches the mode of classes with \
               update transactions [%s] still in flight — the mode-switch \
               barrier must drain them first"
      r.Trace.seq seq ids
  end;
  t.last_esc_seq <- seq;
  t.esc_modes <- next

let escalated t cls = cls < Array.length t.esc_modes && t.esc_modes.(cls) <> 0

let handle t (r : Trace.record) =
  t.events_seen <- t.events_seen + 1;
  match r.Trace.ev with
  | Trace.Durable_ack _ | Trace.Durable_recovered _ | Trace.Recovery_complete _
  | Trace.Checkpoint_cut _ ->
    handle_durability t r
  | _ when t.durability_only -> ()
  | Trace.Begin { txn; kind; init } ->
    let wall =
      match kind with
      | Trace.Read_only -> wall_for t ~init
      | _ -> None
    in
    Hashtbl.replace t.active txn { kind; init; wall; pending = []; used = [] }
  | Trace.Read { txn; protocol; segment; key; threshold; version } ->
    check_read t r ~txn ~protocol ~segment ~key ~threshold ~version
  | Trace.Block { txn; protocol; segment; _ } -> (
    match protocol with
    | Trace.B -> ()
    | Trace.A | Trace.C ->
      violate t "event %d: protocol %s read of D%d by txn %d blocked — \
                 protocols A and C never wait"
        r.Trace.seq
        (if protocol = Trace.A then "A" else "C")
        segment txn)
  | Trace.Reject { txn; protocol; stage; segment; reason } -> (
    match (stage, protocol) with
    | Trace.Rule, Some (Trace.A | Trace.C) ->
      violate t "event %d: protocol %s access to D%d by txn %d rejected \
                 (%s) — protocols A and C never reject"
        r.Trace.seq
        (if protocol = Some Trace.A then "A" else "C")
        segment txn reason
    | _ -> () (* routing and barrier rejections are by design; B may
                 reject (MVTO late writes) *))
  | Trace.Write { txn; segment; key; ts } -> (
    match Hashtbl.find_opt t.active txn with
    | None ->
      violate t "event %d: write by unknown transaction %d" r.Trace.seq txn
    | Some info ->
      (match info.kind with
      | Trace.Update cls when escalated t cls ->
        (* escalated classes install at a commit stamp taken after the
           transaction's operations — strictly after initiation *)
        if ts <= info.init then
          violate t "event %d: write to D%d/%d by escalated txn %d carries \
                     timestamp %d, not a commit stamp after its initiation \
                     time %d"
            r.Trace.seq segment key txn ts info.init
      | _ ->
        if ts <> info.init then
          violate t "event %d: write to D%d/%d by txn %d carries timestamp \
                     %d, not its initiation time %d"
            r.Trace.seq segment key txn ts info.init);
      (* a rewrite of the same granule replaces the pending version *)
      info.pending <-
        (segment, key, ts)
        :: List.filter (fun (s, k, _) -> (s, k) <> (segment, key)) info.pending)
  | Trace.Commit { txn; _ } -> (
    match Hashtbl.find_opt t.active txn with
    | None ->
      violate t "event %d: commit of unknown transaction %d" r.Trace.seq txn
    | Some info ->
      List.iter
        (fun (segment, key, ts) ->
          let tss = committed_of t ~segment ~key in
          if List.mem ts tss then
            violate t "event %d: txn %d committed a duplicate version \
                       timestamp %d at D%d/%d"
              r.Trace.seq txn ts segment key;
          Hashtbl.replace t.committed (segment, key)
            (List.sort (fun a b -> compare b a) (ts :: tss)))
        info.pending;
      Hashtbl.remove t.active txn)
  | Trace.Abort { txn; _ } -> Hashtbl.remove t.active txn
  | Trace.Wall_release { m; released_at; components } ->
    (match t.walls with
    | (prev_released, prev_components) :: _ ->
      if released_at <= prev_released then
        violate t "event %d: wall released at %d after one released at %d"
          r.Trace.seq released_at prev_released;
      Array.iteri
        (fun s c ->
          if
            s < Array.length prev_components
            && c < prev_components.(s)
          then
            violate t "event %d: wall component D%d moved backwards: %d \
                       after %d (walls must be monotone)"
              r.Trace.seq s c prev_components.(s))
        components
    | [] -> ());
    ignore m;
    t.walls <- (released_at, Array.copy components) :: t.walls
  | Trace.Gc { vector; _ } ->
    check_gc t r ~vector;
    prune_shadow t ~vector
  | Trace.Repartition { epoch; fresh_store; _ } ->
    check_repartition t r ~epoch ~fresh_store
  | Trace.Escalation { seq; modes } -> check_escalation t r ~seq ~modes
  | Trace.Wall_blocked _ | Trace.Seg_gc _ | Trace.Registry_prune _
  | Trace.Sim _ | Trace.Note _ ->
    ()

let attach t trace = Trace.subscribe trace (handle t)
let feed = handle
