(** Online invariant monitors: the paper's correctness claims, checked
    continuously against the {!Trace} stream instead of only by the
    offline MVSG certifier.

    A monitor subscribes to a trace and replays a shadow of the system —
    active transactions with their kinds and observed thresholds, the
    committed version timestamps of every granule, the released walls —
    and raises (or records) on the first event that contradicts one of
    the four invariants:

    + {b Protocol A/C no-wait, no-reject} (§4.2, §5.2): a read served by
      protocol A or C never blocks, and is never rejected by a protocol
      rule.  Routing rejections (specification violations) and the
      ad-hoc barrier are by design and exempt.
    + {b Wall monotonicity} (§5.1): successive released walls have
      strictly increasing anchor and release times and componentwise
      non-decreasing thresholds.
    + {b Per-segment write-timestamp ordering} (§4.2): every write
      carries its transaction's initiation timestamp, committed version
      timestamps are unique per granule, and every read returns the
      latest version the shadow store knows below its threshold — a
      version served strictly older than a committed one under the
      threshold is a timestamp-order violation.
    + {b Durability} (the durable engine's contract): a commit
      acknowledged as durable ({!Trace.event.Durable_ack}) must be
      replayed ({!Trace.event.Durable_recovered}) by every subsequent
      recovery — checked at each {!Trace.event.Recovery_complete} — and
      checkpoint cuts ({!Trace.event.Checkpoint_cut}) carry strictly
      increasing sequence numbers with componentwise non-decreasing wall
      vectors.
    + {b GC never above the watermark} (§7.3): every collection's
      per-segment threshold vector stays below what any active
      transaction could still read — its initiation time for its own
      class (and every segment for ad-hoc transactions), every
      threshold it has already used (except on the root segment of an
      escalated class, whose reads take the latest committed version
      rather than a repeatable MVTO bound), its wall's components for
      walled readers, and the current wall for readers yet to begin.  The
      shadow store is pruned with the same vector, so a collection that
      overreaches also surfaces as a stale or rejected read.
    + {b Partition epoch safety} (dynamic decomposition, DESIGN.md §17):
      {!Trace.event.Repartition} events carry strictly increasing epoch
      numbers and never land while a transaction is in flight — the wall
      barrier must have drained every worker first.  A repair with
      [fresh_store = true] retires the committed-version shadow and the
      released walls of the old epoch (segment ids changed meaning); a
      pure ownership migration keeps both.
    + {b Escalation safety} (hybrid CC, DESIGN.md §18):
      {!Trace.event.Escalation} events carry strictly increasing sequence
      numbers and never land while an update transaction of a class whose
      mode changes is in flight.  The write-timestamp rule becomes
      mode-aware: a class escalated by the newest event installs versions
      at a commit stamp strictly {e after} its initiation time, while
      non-escalated classes (and hosted / ad-hoc transactions) keep the
      exact-initiation-time rule.

    The monitor is an oracle over the event stream only: it never touches
    scheduler or store internals, so it runs identically under the
    simulator, the explorer, the torture harness and the benchmark. *)

exception Violation of string

type t

val create :
  ?raise_on_violation:bool ->
  ?wall_rule:[ `Latest | `Any_released ] ->
  ?durability_only:bool ->
  unit ->
  t
(** [raise_on_violation] (default [true]) raises {!Violation} out of the
    emitting call on the first broken invariant; with [false] violations
    accumulate and the run continues — the torture harness's mode.

    [wall_rule] (default [`Latest]) sets how a walled reader's observed
    thresholds are pinned.  [`Latest] is the serial scheduler's rule: the
    newest wall released before the reader's initiation.  [`Any_released]
    accepts the component of {e any} wall released before the reader's
    initiation — the sound relaxation for the parallel runtime, where a
    reader loads the seqlock-published wall and only then ticks its
    initiation time, so a concurrent release can slide a newer wall in
    between.

    [durability_only] (default [false]) checks only the durability
    invariant and ignores every other event — the mode for feeding one
    monitor a stream that spans crashes and recoveries, where
    transaction ids recur across sessions and the shadow-replay rules
    would misfire.  Acknowledged commits are keyed by [(txn, at)], which
    recovery's clock catch-up keeps unique across sessions. *)

val attach : t -> Trace.t -> unit

val feed : t -> Trace.record -> unit
(** Check one record directly — for replaying a merged per-domain record
    list (see {!Trace.merged}) rather than subscribing to a live ring. *)

val violations : t -> string list
(** Oldest first; empty when every event so far conformed. *)

val events_seen : t -> int
(** Events checked — a vacuity guard for tests. *)

val active_count : t -> int
(** Transactions the shadow currently considers active. *)

val last_epoch : t -> int
(** Newest partition epoch a {!Trace.event.Repartition} entered; 0 when
    none has been seen. *)

val last_esc_seq : t -> int
(** Newest {!Trace.event.Escalation} sequence number; 0 when none has
    been seen. *)
