type protocol = A | B | C

type txn_kind =
  | Update of int
  | Read_only
  | Hosted of int
  | Adhoc of { wsegs : int list; rsegs : int list }

type reject_stage = Routing | Barrier | Rule

type event =
  | Begin of { txn : int; kind : txn_kind; init : int }
  | Read of {
      txn : int;
      protocol : protocol;
      segment : int;
      key : int;
      threshold : int;
      version : int;
    }
  | Block of {
      txn : int;
      protocol : protocol;
      segment : int;
      key : int;
      on : int list;
    }
  | Reject of {
      txn : int;
      protocol : protocol option;
      stage : reject_stage;
      segment : int;
      reason : string;
    }
  | Write of { txn : int; segment : int; key : int; ts : int }
  | Commit of { txn : int; at : int }
  | Abort of { txn : int; at : int }
  | Wall_release of { m : int; released_at : int; components : int array }
  | Wall_blocked of { on : int }
  | Gc of { watermark : int; vector : int array; dropped : int }
  | Seg_gc of { segment : int; dropped : int }
  | Registry_prune of {
      upto : int;
      records_dropped : int;
      windows_dropped : int;
    }
  | Sim of { label : string; txn : int }
  | Note of string
  | Durable_ack of { txn : int; at : int }
  | Durable_recovered of { txn : int; at : int }
  | Recovery_complete of { last_time : int }
  | Checkpoint_cut of { seq : int; components : int array }
  | Repartition of {
      epoch : int;
      kind : string;
      moved : int list;
      fresh_store : bool;
    }
  | Escalation of { seq : int; modes : int list }

type record = { seq : int; at : int; dom : int; ev : event }

(* The ring holds plain ints, not records: a boxed record retained in a
   big ring survives every minor collection and gets promoted, which at
   emission rates of millions/sec turns the flight recorder into a major
   heap churn (measured ~6x the whole emission cost).  Hot events (begin,
   read, write, commit, abort and the other fixed-arity ones) flatten
   into [width] int slots; the rare variable-payload events (ad-hoc
   begins, blocks, rejects, walls, collections, labels) keep their boxed
   form in a side array, written only when they occur. *)
let width = 8

let dummy_ev = Note ""

type t = {
  mutable on : bool;
  domain : int;  (** stamped into every decoded record *)
  capacity : int;
  data : int array;  (** capacity * width: tag, at, payload... *)
  boxed : event array;  (** only read when the slot's tag says so *)
  mutable head : int;  (** next slot *)
  mutable emitted : int;  (** total, evicted included *)
  mutable last_at : int;
  mutable subs : (record -> unit) array;  (** subscription order *)
}

let create ?(capacity = 65536) ?(domain = 0) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  { on = true;
    domain;
    capacity;
    data = Array.make (capacity * width) 0;
    boxed = Array.make capacity dummy_ev;
    head = 0;
    emitted = 0;
    last_at = 0;
    subs = [||] }

let enabled t = t.on
let enable t = t.on <- true
let disable t = t.on <- false
let domain t = t.domain

let proto_int = function A -> 0 | B -> 1 | C -> 2
let int_proto = function 0 -> A | 1 -> B | _ -> C

(* slot tags; [tag_boxed] defers to [boxed.(i)] *)
let tag_begin = 0
and tag_read = 1
and tag_write = 2
and tag_commit = 3
and tag_abort = 4
and tag_wall_blocked = 5
and tag_seg_gc = 6
and tag_prune = 7
and tag_boxed = 8

let emit t ~at ev =
  if t.on then begin
    let i = t.head in
    let b = i * width in
    let d = t.data in
    (* unsafe: [i < capacity] by construction, so [b + o < capacity *
       width] for every [o < width] — the bounds checks are dead weight
       on the hottest path in the library *)
    let set o v = Array.unsafe_set d (b + o) v in
    set 1 at;
    (match ev with
    | Read { txn; protocol; segment; key; threshold; version } ->
      set 0 tag_read;
      set 2 txn;
      set 3 (proto_int protocol);
      set 4 segment;
      set 5 key;
      set 6 threshold;
      set 7 version
    | Write { txn; segment; key; ts } ->
      set 0 tag_write;
      set 2 txn;
      set 3 segment;
      set 4 key;
      set 5 ts
    | Commit { txn; at = fin } ->
      set 0 tag_commit;
      set 2 txn;
      set 3 fin
    | Abort { txn; at = fin } ->
      set 0 tag_abort;
      set 2 txn;
      set 3 fin
    | Begin { txn; kind = Update c; init } ->
      set 0 tag_begin;
      set 2 txn;
      set 3 0;
      set 4 c;
      set 5 init
    | Begin { txn; kind = Read_only; init } ->
      set 0 tag_begin;
      set 2 txn;
      set 3 1;
      set 4 0;
      set 5 init
    | Begin { txn; kind = Hosted below; init } ->
      set 0 tag_begin;
      set 2 txn;
      set 3 2;
      set 4 below;
      set 5 init
    | Wall_blocked { on } ->
      set 0 tag_wall_blocked;
      set 2 on
    | Seg_gc { segment; dropped } ->
      set 0 tag_seg_gc;
      set 2 segment;
      set 3 dropped
    | Registry_prune { upto; records_dropped; windows_dropped } ->
      set 0 tag_prune;
      set 2 upto;
      set 3 records_dropped;
      set 4 windows_dropped
    | Begin _ | Block _ | Reject _ | Wall_release _ | Gc _ | Sim _ | Note _
    | Durable_ack _ | Durable_recovered _ | Recovery_complete _
    | Checkpoint_cut _ | Repartition _ | Escalation _ ->
      (* durability events are per-batch or per-recovery, not per-op:
         boxing them is off the hot path *)
      set 0 tag_boxed;
      Array.unsafe_set t.boxed i ev);
    t.head <- (if i + 1 = t.capacity then 0 else i + 1);
    t.emitted <- t.emitted + 1;
    t.last_at <- at;
    let subs = t.subs in
    if Array.length subs > 0 then begin
      let r = { seq = t.emitted - 1; at; dom = t.domain; ev } in
      Array.iter (fun f -> f r) subs
    end
  end

let emit_here t ev = emit t ~at:t.last_at ev

let subscribe t f = t.subs <- Array.append t.subs [| f |]

let decode t i ~seq =
  let b = i * width in
  let d = t.data in
  let at = d.(b + 1) in
  let ev =
    match d.(b) with
    | 0 (* tag_begin *) ->
      Begin
        { txn = d.(b + 2);
          kind =
            (match d.(b + 3) with
            | 0 -> Update d.(b + 4)
            | 1 -> Read_only
            | _ -> Hosted d.(b + 4));
          init = d.(b + 5) }
    | 1 (* tag_read *) ->
      Read
        { txn = d.(b + 2);
          protocol = int_proto d.(b + 3);
          segment = d.(b + 4);
          key = d.(b + 5);
          threshold = d.(b + 6);
          version = d.(b + 7) }
    | 2 (* tag_write *) ->
      Write
        { txn = d.(b + 2); segment = d.(b + 3); key = d.(b + 4);
          ts = d.(b + 5) }
    | 3 (* tag_commit *) -> Commit { txn = d.(b + 2); at = d.(b + 3) }
    | 4 (* tag_abort *) -> Abort { txn = d.(b + 2); at = d.(b + 3) }
    | 5 (* tag_wall_blocked *) -> Wall_blocked { on = d.(b + 2) }
    | 6 (* tag_seg_gc *) ->
      Seg_gc { segment = d.(b + 2); dropped = d.(b + 3) }
    | 7 (* tag_prune *) ->
      Registry_prune
        { upto = d.(b + 2);
          records_dropped = d.(b + 3);
          windows_dropped = d.(b + 4) }
    | _ -> t.boxed.(i)
  in
  { seq; at; dom = t.domain; ev }

let records t =
  let kept = Int.min t.emitted t.capacity in
  List.init kept (fun k ->
      let seq = t.emitted - kept + k in
      decode t (seq mod t.capacity) ~seq)

let merged ts =
  let all = List.concat_map records ts in
  List.sort
    (fun a b ->
      match compare a.at b.at with
      | 0 -> ( match compare a.dom b.dom with 0 -> compare a.seq b.seq | c -> c)
      | c -> c)
    all

let emitted t = t.emitted
let dropped t = Int.max 0 (t.emitted - t.capacity)

let clear t =
  t.head <- 0;
  t.emitted <- 0;
  t.last_at <- 0;
  Array.fill t.data 0 (t.capacity * width) 0;
  Array.fill t.boxed 0 t.capacity dummy_ev

(* --- rendering --- *)

let protocol_name = function A -> "A" | B -> "B" | C -> "C"

let ints l = String.concat "," (List.map string_of_int l)

let kind_to_string = function
  | Update i -> Printf.sprintf "update(%d)" i
  | Read_only -> "read_only"
  | Hosted b -> Printf.sprintf "hosted(%d)" b
  | Adhoc { wsegs; rsegs } ->
    Printf.sprintf "adhoc(w=%s;r=%s)" (ints wsegs) (ints rsegs)

let stage_name = function
  | Routing -> "routing"
  | Barrier -> "barrier"
  | Rule -> "rule"

let event_to_string = function
  | Begin { txn; kind; init } ->
    Printf.sprintf "begin txn=%d kind=%s init=%d" txn (kind_to_string kind)
      init
  | Read { txn; protocol; segment; key; threshold; version } ->
    Printf.sprintf "read txn=%d proto=%s seg=%d key=%d th=%d ver=%d" txn
      (protocol_name protocol) segment key threshold version
  | Block { txn; protocol; segment; key; on } ->
    Printf.sprintf "block txn=%d proto=%s seg=%d key=%d on=%s" txn
      (protocol_name protocol) segment key (ints on)
  | Reject { txn; protocol; stage; segment; reason } ->
    Printf.sprintf "reject txn=%d proto=%s stage=%s seg=%d reason=%S" txn
      (match protocol with Some p -> protocol_name p | None -> "-")
      (stage_name stage) segment reason
  | Write { txn; segment; key; ts } ->
    Printf.sprintf "write txn=%d seg=%d key=%d ts=%d" txn segment key ts
  | Commit { txn; at } -> Printf.sprintf "commit txn=%d at=%d" txn at
  | Abort { txn; at } -> Printf.sprintf "abort txn=%d at=%d" txn at
  | Wall_release { m; released_at; components } ->
    Printf.sprintf "wall m=%d released=%d components=[%s]" m released_at
      (ints (Array.to_list components))
  | Wall_blocked { on } -> Printf.sprintf "wall_blocked on=%d" on
  | Gc { watermark; vector; dropped } ->
    Printf.sprintf "gc watermark=%d vector=[%s] dropped=%d" watermark
      (ints (Array.to_list vector))
      dropped
  | Seg_gc { segment; dropped } ->
    Printf.sprintf "seg_gc seg=%d dropped=%d" segment dropped
  | Registry_prune { upto; records_dropped; windows_dropped } ->
    Printf.sprintf "registry_prune upto=%d records=%d windows=%d" upto
      records_dropped windows_dropped
  | Sim { label; txn } -> Printf.sprintf "sim %s txn=%d" label txn
  | Note s -> Printf.sprintf "note %S" s
  | Durable_ack { txn; at } -> Printf.sprintf "durable_ack txn=%d at=%d" txn at
  | Durable_recovered { txn; at } ->
    Printf.sprintf "durable_recovered txn=%d at=%d" txn at
  | Recovery_complete { last_time } ->
    Printf.sprintf "recovery_complete last_time=%d" last_time
  | Checkpoint_cut { seq; components } ->
    Printf.sprintf "checkpoint_cut seq=%d wall=[%s]" seq
      (ints (Array.to_list components))
  | Repartition { epoch; kind; moved; fresh_store } ->
    Printf.sprintf "repartition epoch=%d kind=%s moved=[%s] fresh_store=%b"
      epoch kind (ints moved) fresh_store
  | Escalation { seq; modes } ->
    Printf.sprintf "escalation seq=%d modes=[%s]" seq (ints modes)

let pp_event ppf ev = Format.pp_print_string ppf (event_to_string ev)

let pp_record ppf r =
  Format.fprintf ppf "%d @%d %s" r.seq r.at (event_to_string r.ev)

let text_of_records rs =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%d @%d %s\n" r.seq r.at (event_to_string r.ev)))
    rs;
  Buffer.contents b

let to_text t = text_of_records (records t)
