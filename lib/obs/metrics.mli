(** A small metrics registry: named counters, gauges and histograms,
    cheap enough to leave on in production runs and dumped as one sorted
    snapshot (the CLI and benchkit render it as JSON).

    {!attach} installs the standard bridge from a {!Trace} stream, so a
    single emission pathway feeds both the trace ring and the counters
    the operator dashboards read: aborts, reads served per protocol,
    wall releases, GC collections, registry prune depth. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create.  @raise Invalid_argument if the name is already bound
    to a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are upper bounds, ascending (default powers of two from 1
    to 2^20); an implicit +inf bucket catches the rest.  A repeated
    lookup ignores [buckets] and returns the existing histogram. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val quantile : histogram -> float -> float
(** Upper bound of the bucket containing the [q]-quantile observation
    ([0 <= q <= 1]); 0 when empty.  Coarse by construction. *)

val p50 : histogram -> float
val p99 : histogram -> float

val p999 : histogram -> float
(** Tail quantiles as bucket upper bounds; use {!latency_buckets} for a
    grid fine enough for a meaningful p999. *)

val latency_buckets : float array
(** Geometric ×1.25 grid from 0.5, 64 buckets (~0.5 .. ~5e5) — pass as
    [?buckets] for latency histograms driving SLO quantiles. *)

type snap =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }
      (** cumulative-free per-bucket counts, bounds ascending; the last
          bound is [infinity] *)

val snapshot : t -> (string * snap) list
(** All metrics, sorted by name. *)

val find : t -> string -> snap option

val attach : t -> Trace.t -> unit
(** Subscribe the standard scheduler bridge: every trace record bumps the
    matching metric ([txn.begins], [txn.commits], [txn.aborts],
    [reads.a], [reads.b], [reads.c], [writes], [blocks], [rejects],
    [wall.releases], [wall.blocked], [gc.collections],
    [gc.versions_dropped], [gc.dropped_per_collection] (histogram),
    [registry.pruned_records], [registry.pruned_windows],
    [adapt.repartitions], [hybrid.escalations], and [sim.<label>] for
    driver events). *)
