(** Structured tracing for the HDD stack.

    A trace is a ring buffer of typed records, each stamped with a
    sequence number and the logical sim-time at which it was emitted, plus
    a list of synchronous subscribers ({!Metrics.attach},
    {!Monitor.attach}).  The schema mirrors the paper's vocabulary —
    transactions and their classes, protocol A/B/C reads with their
    version-selection thresholds, time-wall releases, garbage collection
    with its watermark vector — so the stream is sufficient to re-derive
    every invariant the offline certifier checks.

    This module is deliberately dependency-free (times, transaction ids,
    segments and keys are plain [int]s, which is what they are everywhere
    in the tree), so every layer from [Hdd_txn.Registry] up to the CLI
    can emit without dependency cycles.

    Cost model: producers hold a [Trace.t option]; [None] (the default
    everywhere) costs one pattern match per potential emission point and
    allocates nothing.  A present-but-{!disable}d trace additionally pays
    one load and branch.  Only an enabled trace allocates records. *)

type protocol = A | B | C
(** Which of the paper's protocols served an access (§4.2, §5.2). *)

type txn_kind =
  | Update of int  (** member of update class [Ti] *)
  | Read_only  (** Protocol C, walled *)
  | Hosted of int  (** read-only hosted below this class (§5.0) *)
  | Adhoc of { wsegs : int list; rsegs : int list }  (** §7.1.1 *)

type reject_stage =
  | Routing
      (** specification violation: an access the partition analysis
          forbids (wrong segment, not higher in the DHG, …) *)
  | Barrier  (** the ad-hoc activity-window barrier (§7.1.1) *)
  | Rule
      (** a protocol rule fired: the MVTO late-write check, or a
          snapshot read finding its version collected — the rejections
          the invariant monitors care about *)

type event =
  | Begin of { txn : int; kind : txn_kind; init : int }
  | Read of {
      txn : int;
      protocol : protocol;
      segment : int;
      key : int;
      threshold : int;  (** version-selection threshold used *)
      version : int;  (** timestamp of the version served *)
    }
  | Block of {
      txn : int;
      protocol : protocol;
      segment : int;
      key : int;
      on : int list;  (** writer transactions waited on *)
    }
  | Reject of {
      txn : int;
      protocol : protocol option;  (** [None] before routing resolved *)
      stage : reject_stage;
      segment : int;  (** [-1] when no single segment applies *)
      reason : string;
    }
  | Write of { txn : int; segment : int; key : int; ts : int }
  | Commit of { txn : int; at : int }
  | Abort of { txn : int; at : int }
  | Wall_release of { m : int; released_at : int; components : int array }
  | Wall_blocked of { on : int }  (** release failed: [on] still active *)
  | Gc of { watermark : int; vector : int array; dropped : int }
  | Seg_gc of { segment : int; dropped : int }
  | Registry_prune of {
      upto : int;
      records_dropped : int;
      windows_dropped : int;
    }
  | Sim of { label : string; txn : int }
      (** driver-level happenings: restart, deadlock, give_up, … *)
  | Note of string
  | Durable_ack of { txn : int; at : int }
      (** the durable engine acknowledged commit [at] of [txn] as on
          disk — after the fsync (grouped or not) covering its commit
          record succeeded *)
  | Durable_recovered of { txn : int; at : int }
      (** replay re-installed the commit [at] of [txn]; emitted by
          full-log recovery, whose replay visits every commit record *)
  | Recovery_complete of { last_time : int }
      (** replay finished: every {!Durable_ack}ed commit must have been
          {!Durable_recovered} by now — the durability monitor rule *)
  | Checkpoint_cut of { seq : int; components : int array }
      (** checkpoint [seq] cut the store at this wall vector; successive
          cuts must be componentwise monotone *)
  | Repartition of {
      epoch : int;  (** the partition epoch entered — strictly increasing *)
      kind : string;  (** "migrate", "split", "merge", … *)
      moved : int list;
          (** the classes (migration) or segments (split/merge) touched *)
      fresh_store : bool;
          (** true when the repair rebuilt the physical store (segment
              identities changed), false for a pure ownership migration —
              drives the monitor's shadow reset *)
    }
      (** a dynamic-decomposition repair was applied behind a wall
          barrier: every transaction begun before this event ran under
          the old partition, every one after under the new *)
  | Escalation of { seq : int; modes : int list }
      (** the hybrid CC layer switched per-class modes behind a
          mode-switch barrier.  [seq] is strictly increasing; [modes]
          is the complete per-class vector after the switch (0 = plain
          HDD init-stamped, 1 = escalated commit-stamped).  No update
          transaction of a class whose mode changes may be in flight
          when this event fires — the monitor enforces exactly that
          relaxed form, which both the engine's full park barrier and
          the serial scheduler's per-class drain satisfy *)

type record = { seq : int; at : int; dom : int; ev : event }
(** [dom] is the emitting trace's {!domain} tag — 0 for the serial stack,
    the owning domain's index under the parallel runtime, where each
    domain writes its own ring and drains merge by logical time. *)

type t

val create : ?capacity:int -> ?domain:int -> unit -> t
(** A fresh, enabled trace.  [capacity] (default 65536) bounds the ring;
    older records are evicted ({!dropped} counts them).  Subscribers see
    every record regardless of eviction.  [domain] (default 0) tags every
    record decoded from this trace; under the parallel runtime each
    domain owns a private ring, so the tag never needs to live in the
    ring encoding itself.
    @raise Invalid_argument if [capacity <= 0]. *)

val enabled : t -> bool
val enable : t -> unit
val disable : t -> unit

val domain : t -> int
(** The tag stamped into this trace's records. *)

val emit : t -> at:int -> event -> unit
(** Append a record stamped [at] (a logical time) and fan it out to the
    subscribers.  No-op when disabled. *)

val emit_here : t -> event -> unit
(** Emit at the time of the most recent {!emit} — for producers that hold
    no clock (segments, registries) and whose events are always nested
    inside a clocked caller's. *)

val subscribe : t -> (record -> unit) -> unit
(** Synchronous fan-out, in subscription order.  A subscriber exception
    propagates to the emitter — the behaviour invariant monitors want. *)

val records : t -> record list
(** Retained records, oldest first. *)

val merged : t list -> record list
(** Merge-on-drain: the retained records of several (typically
    per-domain) rings, sorted by [(at, dom, seq)].  With the parallel
    runtime ticking the shared logical clock once per emitted event,
    [at] values are unique across domains and the merge is a total
    order consistent with the clock's happens-before. *)

val emitted : t -> int
(** Total records emitted, evicted ones included. *)

val dropped : t -> int
(** Records evicted by ring overflow. *)

val clear : t -> unit
(** Drop retained records and reset counters; subscribers stay. *)

val pp_event : Format.formatter -> event -> unit
val pp_record : Format.formatter -> record -> unit

val text_of_records : record list -> string
(** The golden-trace serialization of an already-drained record list —
    what {!to_text} uses, exposed for merged cross-shard traces. *)

val to_text : t -> string
(** One line per retained record, deterministic for a fixed event stream
    — the golden-trace serialization. *)
