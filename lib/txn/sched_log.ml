type action = Read | Write

type step = {
  txn : Txn.id;
  action : action;
  granule : Granule.t;
  version : Time.t;
}

type t = {
  mutable steps : step list;  (* reversed *)
  mutable count : int;
  dropped : (Txn.id, unit) Hashtbl.t;
}

let create () = { steps = []; count = 0; dropped = Hashtbl.create 16 }

let push t s =
  t.steps <- s :: t.steps;
  t.count <- t.count + 1

let log_read t ~txn ~granule ~version =
  push t { txn; action = Read; granule; version }

let log_write t ~txn ~granule ~version =
  push t { txn; action = Write; granule; version }

let drop_txn t id = Hashtbl.replace t.dropped id ()

let steps t =
  List.filter (fun s -> not (Hashtbl.mem t.dropped s.txn)) (List.rev t.steps)

let length t = t.count

let pp_step ppf s =
  Format.fprintf ppf "<t%d,%s,%a^%a>" s.txn
    (match s.action with Read -> "r" | Write -> "w")
    Granule.pp s.granule Time.pp s.version
