type id = int

type kind = Update of int | Read_only

type status = Active | Committed of Time.t | Aborted of Time.t

type t = {
  id : id;
  kind : kind;
  init : Time.t;
  mutable status : status;
}

let bootstrap =
  { id = 0; kind = Update (-1); init = Time.zero; status = Committed Time.zero }

let make ~id ~kind ~init = { id; kind; init; status = Active }

let is_update t = match t.kind with Update _ -> true | Read_only -> false

let class_of t = match t.kind with Update i -> Some i | Read_only -> None

let is_active t = t.status = Active

let is_committed t =
  match t.status with Committed _ -> true | Active | Aborted _ -> false

let is_aborted t =
  match t.status with Aborted _ -> true | Active | Committed _ -> false

let end_time t =
  match t.status with
  | Active -> None
  | Committed c | Aborted c -> Some c

let active_at t m =
  t.init < m
  && (match end_time t with None -> true | Some e -> e > m)

let transition t ~at ~name mk =
  (match t.status with
  | Active -> ()
  | Committed _ | Aborted _ ->
    invalid_arg (Printf.sprintf "Txn.%s: transaction %d not active" name t.id));
  if at <= t.init then
    invalid_arg
      (Printf.sprintf "Txn.%s: end time %d not after initiation %d" name at
         t.init);
  t.status <- mk at

let commit t ~at = transition t ~at ~name:"commit" (fun c -> Committed c)
let abort t ~at = transition t ~at ~name:"abort" (fun c -> Aborted c)

let pp ppf t =
  let status =
    match t.status with
    | Active -> "active"
    | Committed c -> Printf.sprintf "committed@%d" c
    | Aborted c -> Printf.sprintf "aborted@%d" c
  in
  let kind =
    match t.kind with
    | Update i -> Printf.sprintf "T%d" i
    | Read_only -> "RO"
  in
  Format.fprintf ppf "t%d[%s,I=%a,%s]" t.id kind Time.pp t.init status
