(** Per-class transaction activity registries.

    This is the bookkeeping that makes the activity-link machinery of §4.1
    and §5.1 computable: for every transaction class it records the
    initiation intervals of its transactions and answers the two historical
    queries the paper's functions are built from —

    - [I_old(m)] ({!i_old}): the initiation time of the oldest transaction
      of the class active at time [m], or [m] itself when none was active;
    - [C_late(m)] ({!c_late}): the latest commit time among transactions of
      the class active at [m], or [m] when none was; only *computable* once
      every transaction initiated at or before [m] has finished.

    Aborted transactions count as active until their abort instant (the
    paper's "uncommitted and un-aborted"), and their abort instant counts
    as an end time in [C_late]: the clearing time must cover every
    activity window [I_old] can see, or Property 2.1 ([A∘B >= id]) fails
    around aborts.  They still install no versions, hence create no
    dependencies.

    Transactions initiate in clock order, so each class's records arrive
    sorted by initiation time.  Queries are served from an incremental
    index — an ordered list of the transactions last seen active plus a
    dominance-pruned array of finished activity windows — so [i_old] and
    [c_late] cost O(actives + log windows) instead of a scan of the class
    log; the original scans survive as {!i_old_scan}/{!c_late_scan} for
    the benchmarks and the equivalence properties.  {!prune} drops
    finished records and windows that can no longer be queried (e.g.
    below a released time wall). *)

type t

val create : ?trace:Hdd_obs.Trace.t -> classes:int -> unit -> t
(** Registry for update classes [0 .. classes-1].  With [trace], {!prune}
    emits a [Registry_prune] record carrying the prune depth (records and
    windows dropped). *)

val class_count : t -> int

val register : t -> Txn.t -> unit
(** Record an update transaction at initiation, in its declared class.
    @raise Invalid_argument on a read-only transaction, an out-of-range
    class, or an initiation time not larger than the last registered one of
    that class's registry. *)

val register_in : t -> class_id:int -> Txn.t -> unit
(** Record a transaction in an explicit class, regardless of its declared
    kind — the hook for ad-hoc transactions (§7.1.1), which join *every*
    class whose segment they access so all activity-link thresholds
    account for them.  Same monotonicity requirement per class. *)

val register_active : t -> class_id:int -> id:Txn.id -> init:Time.t -> unit
(** Packed single-active fast path for the multicore engine, which runs
    at most one update transaction per class at a time: record activity
    as two ints, with no [Txn.t] allocated.  Queries account for the
    packed active exactly as for a registered transaction.
    @raise Invalid_argument if the class already has a packed active or
    [init] does not exceed the last finished window's initiation. *)

val finish_active : t -> class_id:int -> endt:Time.t -> unit
(** Close the packed active's activity window at [endt] (commit {e or}
    abort instant — aborted windows count, as with {!register}).
    Allocation-free at steady state: the window index compacts in place
    once {!prune} keeps up.
    @raise Invalid_argument if no packed active or [endt <= init]. *)

val active_init : t -> class_id:int -> Time.t
(** Initiation time of the class's packed active, or [max_int] when
    none — the engine's coordinator-free quiescence probe. *)

val i_old : t -> class_id:int -> at:Time.t -> Time.t
(** The paper's [I_old^{class}(m)]. *)

val c_late :
  t -> class_id:int -> at:Time.t -> (Time.t, Txn.id) result
(** The paper's [C_late^{class}(m)]; [Error id] when not yet computable
    because transaction [id] (initiated at or before [m]) is still
    active. *)

val c_late_computable : t -> class_id:int -> at:Time.t -> bool

val i_old_scan : t -> class_id:int -> at:Time.t -> Time.t
(** Reference implementation of {!i_old}: a linear scan of the class log,
    as shipped before the incremental index.  Kept as the benchmark
    ablation partner and the oracle for the equivalence property. *)

val c_late_scan :
  t -> class_id:int -> at:Time.t -> (Time.t, Txn.id) result
(** Reference implementation of {!c_late}, same role as {!i_old_scan}. *)

val generation : t -> class_id:int -> int
(** A counter that advances whenever a query against the class could
    change — on registration and whenever a member transaction is
    observed to have finished.  Monotone; equal generations mean every
    [i_old]/[c_late] answer for the class is unchanged, which is what
    lets {!Activity} cache composed thresholds across calls. *)

val active_count : t -> class_id:int -> int
(** Transactions of the class currently active. *)

val oldest_active : t -> class_id:int -> Txn.t option
(** The active transaction of the class with the smallest initiation
    time, if any — the O(1) cursor behind {!i_old}. *)

val transactions : t -> class_id:int -> Txn.t list
(** Retained records, oldest first. *)

val record_count : t -> class_id:int -> int
(** Retained records (telemetry for the benchmark suite). *)

val window_count : t -> class_id:int -> int
(** Retained finished-activity windows after dominance pruning
    (telemetry for the benchmark suite). *)

(** {1 Immutable snapshots}

    A {!snapshot} freezes every class's activity state — the ordered
    actives (id, initiation) and the dominance-pruned finished-window
    arrays — into a value that shares nothing mutable with the live
    registry.  The parallel runtime publishes one per owner domain
    through an [Atomic], so cross-class threshold computations on other
    domains are pure reads with no locks and no access to scan
    internals.  A snapshot answers exactly as the live registry answered
    at capture time: the 1000-seed equivalence property in
    [test_runtime.ml] pins this. *)

type snapshot

val snapshot : t -> snapshot
(** Capture all classes.  Costs O(actives + windows) copies; the live
    registry is synced first so the view reflects every finish observed
    so far. *)

val snap_classes : snapshot -> int

val snap_generation : snapshot -> class_id:int -> int
(** The class's {!generation} at capture time. *)

val snap_i_old : snapshot -> class_id:int -> at:Time.t -> Time.t
(** {!i_old} against the frozen view. *)

val snap_c_late :
  snapshot -> class_id:int -> at:Time.t -> (Time.t, Txn.id) result
(** {!c_late} against the frozen view. *)

val snap_parts :
  snapshot -> ((Txn.id * Time.t) list * (Time.t * Time.t) array * int) array
(** The frozen state, one triple per class: the ordered actives
    (id, initiation; oldest first), the dominance-pruned finished
    windows as [(init, end)] pairs (both columns ascending), and the
    generation — everything a wire codec needs to rebuild the snapshot
    on another machine.  Fresh arrays; mutating them is safe. *)

val snapshot_of_parts :
  ((Txn.id * Time.t) list * (Time.t * Time.t) array * int) array -> snapshot
(** Rebuild a snapshot from decoded parts.  Validates the shape
    {!snap_parts} guarantees — actives ascending by initiation, window
    columns strictly ascending, each window's init below its end — so a
    decoder feeding it corrupted bytes gets a clean failure, not a
    snapshot that answers nonsense.
    @raise Invalid_argument on malformed parts. *)

val prune : t -> upto:Time.t -> unit
(** Forget prefix records that finished at or before [upto].  Queries with
    [at < upto] become unreliable after pruning; callers pass the oldest
    time still reachable by any protocol computation (e.g. the previous
    released time wall's minimum). *)
