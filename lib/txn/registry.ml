type class_log = {
  mutable records : Txn.t array;  (* circular-free growable array *)
  mutable base : int;  (* first live index after pruning *)
  mutable len : int;  (* one past the last used index *)
}

type t = { logs : class_log array }

let create ~classes =
  if classes <= 0 then invalid_arg "Registry.create: classes must be > 0";
  { logs =
      Array.init classes (fun _ ->
          { records = Array.make 8 Txn.bootstrap; base = 0; len = 0 }) }

let class_count t = Array.length t.logs

let log_of t class_id =
  if class_id < 0 || class_id >= Array.length t.logs then
    invalid_arg (Printf.sprintf "Registry: class %d out of range" class_id);
  t.logs.(class_id)

let register_in t ~class_id (txn : Txn.t) =
  let log = log_of t class_id in
  if log.len > log.base && (log.records.(log.len - 1)).Txn.init >= txn.init
  then
    invalid_arg "Registry.register: initiation times must be increasing";
  if log.len = Array.length log.records then begin
    let live = log.len - log.base in
    let bigger = Array.make (Int.max 8 (2 * live)) Txn.bootstrap in
    Array.blit log.records log.base bigger 0 live;
    log.records <- bigger;
    log.base <- 0;
    log.len <- live
  end;
  log.records.(log.len) <- txn;
  log.len <- log.len + 1

let register t (txn : Txn.t) =
  match txn.kind with
  | Txn.Read_only -> invalid_arg "Registry.register: read-only transaction"
  | Txn.Update class_id -> register_in t ~class_id txn

(* Iterate the records of a class with init <= m, oldest first; [f] returns
   [true] to keep going. *)
let iter_upto log m f =
  let i = ref log.base in
  let continue = ref true in
  while !continue && !i < log.len do
    let r = log.records.(!i) in
    if r.Txn.init > m then continue := false
    else begin
      continue := f r;
      incr i
    end
  done

let i_old t ~class_id ~at =
  let log = log_of t class_id in
  let found = ref at in
  (try
     iter_upto log at (fun r ->
         if Txn.active_at r at then begin
           found := r.Txn.init;
           raise Exit
         end
         else true)
   with Exit -> ());
  !found

let c_late t ~class_id ~at =
  let log = log_of t class_id in
  let blocking = ref None in
  let latest = ref at in
  let saw_committed_span = ref false in
  (* strict initiation bound, matching Txn.active_at: transactions
     initiated exactly at [at] play no role in C_late(at) *)
  iter_upto log (at - 1) (fun r ->
      (match r.Txn.status with
      | Txn.Active -> blocking := Some r.Txn.id
      | Txn.Committed c | Txn.Aborted c ->
        (* aborted windows count too: I_old treats the transaction as
           active until its abort, so the clearing time must cover it,
           or A(B(m)) >= m (Property 2.1) fails around aborts *)
        if c > at then begin
          saw_committed_span := true;
          if c > !latest then latest := c
        end);
      !blocking = None);
  match !blocking with
  | Some id -> Error id
  | None -> Ok (if !saw_committed_span then !latest else at)

let c_late_computable t ~class_id ~at =
  match c_late t ~class_id ~at with Ok _ -> true | Error _ -> false

let active_count t ~class_id =
  let log = log_of t class_id in
  let n = ref 0 in
  for i = log.base to log.len - 1 do
    if Txn.is_active log.records.(i) then incr n
  done;
  !n

let transactions t ~class_id =
  let log = log_of t class_id in
  List.init (log.len - log.base) (fun i -> log.records.(log.base + i))

let prune t ~upto =
  Array.iter
    (fun log ->
      let i = ref log.base in
      let continue = ref true in
      while !continue && !i < log.len do
        let r = log.records.(!i) in
        match Txn.end_time r with
        | Some e when e <= upto -> incr i
        | _ -> continue := false
      done;
      log.base <- !i)
    t.logs
