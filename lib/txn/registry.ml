type class_log = {
  mutable records : Txn.t array;  (* circular-free growable array *)
  mutable base : int;  (* first live index after pruning *)
  mutable len : int;  (* one past the last used index *)
  (* --- incremental activity index ---
     [pending] holds registered transactions last seen active, oldest
     (smallest initiation) first; a lazy [sync] pass moves the ones that
     have since finished into the window arrays.  [w_end]/[w_init] record
     finished activity windows [init, end) with both columns ascending:
     every window dominated by another (later end, older init) is dropped
     on insertion, so the first window with [end > m] is the oldest one
     spanning [m], and the last window with [init < m] carries the latest
     end among windows initiated before [m].  This turns [i_old]/[c_late]
     into O(|active| + log windows) instead of a scan of the class log. *)
  mutable pending : Txn.t list;
  (* --- packed single-active fast path ---
     The multicore engine runs at most one update transaction per class
     at a time, so its commit path registers activity as two ints
     instead of allocating a [Txn.t] and threading it through [pending]:
     [a_init = max_int] means no packed active.  Queries account for
     both faces; the packed active is always the newest activity. *)
  mutable a_id : Txn.id;
  mutable a_init : Time.t;
  mutable w_end : int array;
  mutable w_init : int array;
  mutable w_base : int;
  mutable w_len : int;
  mutable gen : int;  (* bumped whenever a query could change *)
}

type t = { logs : class_log array; trace : Hdd_obs.Trace.t option }

let fresh_log () =
  { records = Array.make 8 Txn.bootstrap; base = 0; len = 0;
    pending = []; a_id = -1; a_init = max_int;
    w_end = [||]; w_init = [||]; w_base = 0; w_len = 0;
    gen = 0 }

let create ?trace ~classes () =
  if classes <= 0 then invalid_arg "Registry.create: classes must be > 0";
  { logs = Array.init classes (fun _ -> fresh_log ()); trace }

let class_count t = Array.length t.logs

let log_of t class_id =
  if class_id < 0 || class_id >= Array.length t.logs then
    invalid_arg (Printf.sprintf "Registry: class %d out of range" class_id);
  t.logs.(class_id)

(* --- finished-window index maintenance --- *)

let ensure_window_capacity log =
  if log.w_len >= Array.length log.w_end then begin
    let live = log.w_len - log.w_base in
    let cap = Array.length log.w_end in
    if cap > 0 && live + 1 <= cap - Int.max 1 (cap / 4) then begin
      (* at least a quarter of the buffer was pruned away: reclaim it in
         place (same-array blit) instead of allocating — this is what
         keeps the steady-state commit path at zero bytes once a wall
         keeps pruning behind it *)
      Array.blit log.w_end log.w_base log.w_end 0 live;
      Array.blit log.w_init log.w_base log.w_init 0 live;
      log.w_base <- 0;
      log.w_len <- live
    end
    else begin
      let cap = Int.max 8 (2 * (live + 1)) in
      let ends = Array.make cap 0 and inits = Array.make cap 0 in
      Array.blit log.w_end log.w_base ends 0 live;
      Array.blit log.w_init log.w_base inits 0 live;
      log.w_end <- ends;
      log.w_init <- inits;
      log.w_base <- 0;
      log.w_len <- live
    end
  end

(* The binary searches are top-level and tail-recursive on ints: a [ref]
   accumulator would allocate a minor-heap cell per query, and these sit
   on the zero-allocation commit path (DESIGN.md §16). *)

(* First index in [[lo, hi)] of [arr] whose value is > [m] (= hi if none). *)
let rec bs_above arr lo hi m =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if Array.unsafe_get arr mid > m then bs_above arr lo mid m
    else bs_above arr (mid + 1) hi m

(* First index in [[lo, hi)] of [arr] whose value is >= [m] (= hi if none). *)
let rec bs_at_or_above arr lo hi m =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if Array.unsafe_get arr mid >= m then bs_at_or_above arr lo mid m
    else bs_at_or_above arr (mid + 1) hi m

(* First index in [[w_base, w_len)] whose end is > [m] (= w_len if none). *)
let first_end_above log m = bs_above log.w_end log.w_base log.w_len m

(* First index in [[w_base, w_len)] whose init is >= [m] (= w_len if none). *)
let first_init_at_or_above log m =
  bs_at_or_above log.w_init log.w_base log.w_len m

(* Start of the contiguous run of windows just below [pos] that a new
   window initiated at [init] dominates. *)
let rec dominated_run_start w_init base pos init =
  if pos > base && Array.unsafe_get w_init (pos - 1) >= init then
    dominated_run_start w_init base (pos - 1) init
  else pos

let add_window log ~endt ~init =
  ensure_window_capacity log;
  let pos = first_end_above log endt in
  (* dominated: some retained window ends no earlier and started no later *)
  if not (pos < log.w_len && log.w_init.(pos) <= init) then begin
    (* windows this one dominates sit in a contiguous run just below [pos] *)
    let j = dominated_run_start log.w_init log.w_base pos init in
    let tail = log.w_len - pos in
    Array.blit log.w_end pos log.w_end (j + 1) tail;
    Array.blit log.w_init pos log.w_init (j + 1) tail;
    log.w_end.(j) <- endt;
    log.w_init.(j) <- init;
    log.w_len <- j + 1 + tail
  end

(* Move transactions that finished since the last look from [pending] into
   the window index.  Lazy: nothing tells the registry about commits and
   aborts (drivers mutate {!Txn.t} directly), so every query re-checks the
   few transactions last seen active. *)
let sync log =
  match log.pending with
  | [] -> ()
  | pending ->
    let changed = ref false in
    let still =
      List.filter
        (fun (r : Txn.t) ->
          if Txn.is_active r then true
          else begin
            (match Txn.end_time r with
            | Some e -> add_window log ~endt:e ~init:r.Txn.init
            | None -> ());
            changed := true;
            false
          end)
        pending
    in
    if !changed then begin
      log.pending <- still;
      log.gen <- log.gen + 1
    end

let register_in t ~class_id (txn : Txn.t) =
  let log = log_of t class_id in
  if log.len > log.base && (log.records.(log.len - 1)).Txn.init >= txn.init
  then
    invalid_arg "Registry.register: initiation times must be increasing";
  if log.len = Array.length log.records then begin
    let live = log.len - log.base in
    let bigger = Array.make (Int.max 8 (2 * live)) Txn.bootstrap in
    Array.blit log.records log.base bigger 0 live;
    log.records <- bigger;
    log.base <- 0;
    log.len <- live
  end;
  log.records.(log.len) <- txn;
  log.len <- log.len + 1;
  (* initiation times increase, so appending keeps [pending] ordered *)
  log.pending <- log.pending @ [ txn ];
  log.gen <- log.gen + 1

let register t (txn : Txn.t) =
  match txn.kind with
  | Txn.Read_only -> invalid_arg "Registry.register: read-only transaction"
  | Txn.Update class_id -> register_in t ~class_id txn

(* --- packed single-active fast path --- *)

let register_active t ~class_id ~id ~init =
  let log = log_of t class_id in
  if log.a_init <> max_int then
    invalid_arg "Registry.register_active: class already has a packed active";
  if log.w_len > log.w_base && log.w_init.(log.w_len - 1) >= init then
    invalid_arg "Registry.register_active: initiation times must be increasing";
  log.a_id <- id;
  log.a_init <- init;
  log.gen <- log.gen + 1

let finish_active t ~class_id ~endt =
  let log = log_of t class_id in
  if log.a_init = max_int then
    invalid_arg "Registry.finish_active: no packed active";
  if endt <= log.a_init then
    invalid_arg "Registry.finish_active: end time not after initiation";
  add_window log ~endt ~init:log.a_init;
  log.a_id <- -1;
  log.a_init <- max_int;
  log.gen <- log.gen + 1

let active_init t ~class_id = (log_of t class_id).a_init

(* Iterate the records of a class with init <= m, oldest first; [f] returns
   [true] to keep going. *)
let iter_upto log m f =
  let i = ref log.base in
  let continue = ref true in
  while !continue && !i < log.len do
    let r = log.records.(!i) in
    if r.Txn.init > m then continue := false
    else begin
      continue := f r;
      incr i
    end
  done

let i_old t ~class_id ~at =
  let log = log_of t class_id in
  sync log;
  (* oldest currently-active transaction (pending is ordered by init,
     the packed active is always the newest activity) *)
  let best =
    match log.pending with
    | r :: _ when r.Txn.init < at -> r.Txn.init
    | _ -> at
  in
  let best = if log.a_init < best then log.a_init else best in
  (* oldest finished window still spanning [at]; its init is < at
     whenever it is < best, since best <= at *)
  let i = first_end_above log at in
  if i < log.w_len && Array.unsafe_get log.w_init i < best then
    Array.unsafe_get log.w_init i
  else best

let c_late t ~class_id ~at =
  let log = log_of t class_id in
  sync log;
  match log.pending with
  (* strict initiation bound, matching Txn.active_at: transactions
     initiated exactly at [at] play no role in C_late(at) *)
  | r :: _ when r.Txn.init < at -> Error r.Txn.id
  | _ ->
    if log.a_init < at then Error log.a_id
    else
      (* windows are ascending in both columns, so the latest end among
         windows initiated before [at] sits on the last such window *)
      let i = first_init_at_or_above log at in
      if i > log.w_base && log.w_end.(i - 1) > at then Ok log.w_end.(i - 1)
      else Ok at

(* Reference implementations: the original linear scans over the class
   log, kept as the ablation partner for the benchmarks and as the oracle
   for the equivalence properties in the test suite. *)

let i_old_scan t ~class_id ~at =
  let log = log_of t class_id in
  let found = ref at in
  (try
     iter_upto log at (fun r ->
         if Txn.active_at r at then begin
           found := r.Txn.init;
           raise Exit
         end
         else true)
   with Exit -> ());
  !found

let c_late_scan t ~class_id ~at =
  let log = log_of t class_id in
  let blocking = ref None in
  let latest = ref at in
  let saw_committed_span = ref false in
  iter_upto log (at - 1) (fun r ->
      (match r.Txn.status with
      | Txn.Active -> blocking := Some r.Txn.id
      | Txn.Committed c | Txn.Aborted c ->
        (* aborted windows count too: I_old treats the transaction as
           active until its abort, so the clearing time must cover it,
           or A(B(m)) >= m (Property 2.1) fails around aborts *)
        if c > at then begin
          saw_committed_span := true;
          if c > !latest then latest := c
        end);
      !blocking = None);
  match !blocking with
  | Some id -> Error id
  | None -> Ok (if !saw_committed_span then !latest else at)

let c_late_computable t ~class_id ~at =
  match c_late t ~class_id ~at with Ok _ -> true | Error _ -> false

let generation t ~class_id =
  let log = log_of t class_id in
  sync log;
  log.gen

let active_count t ~class_id =
  let log = log_of t class_id in
  sync log;
  List.length log.pending + (if log.a_init <> max_int then 1 else 0)

let oldest_active t ~class_id =
  let log = log_of t class_id in
  sync log;
  match log.pending with [] -> None | r :: _ -> Some r

let transactions t ~class_id =
  let log = log_of t class_id in
  List.init (log.len - log.base) (fun i -> log.records.(log.base + i))

let record_count t ~class_id =
  let log = log_of t class_id in
  log.len - log.base

let window_count t ~class_id =
  let log = log_of t class_id in
  sync log;
  log.w_len - log.w_base

(* --- immutable snapshots --- *)

type class_view = {
  v_actives : (Txn.id * Time.t) list;
  v_w_init : Time.t array;
  v_w_end : Time.t array;
  v_gen : int;
}

type snapshot = { views : class_view array }

let snapshot t =
  { views =
      Array.map
        (fun log ->
          sync log;
          let live = log.w_len - log.w_base in
          let actives =
            List.map (fun (r : Txn.t) -> (r.Txn.id, r.Txn.init)) log.pending
          in
          let actives =
            (* the packed active is the newest activity: append last to
               keep [v_actives] ascending in init *)
            if log.a_init = max_int then actives
            else actives @ [ (log.a_id, log.a_init) ]
          in
          { v_actives = actives;
            v_w_init = Array.sub log.w_init log.w_base live;
            v_w_end = Array.sub log.w_end log.w_base live;
            v_gen = log.gen })
        t.logs }

let snap_classes snap = Array.length snap.views

let view_of snap class_id =
  if class_id < 0 || class_id >= Array.length snap.views then
    invalid_arg
      (Printf.sprintf "Registry.snapshot: class %d out of range" class_id);
  snap.views.(class_id)

let snap_generation snap ~class_id = (view_of snap class_id).v_gen

(* The binary searches from the live index, over a view's plain arrays
   (the view has no [w_base]; its arrays start at 0). *)
let v_first_end_above v m = bs_above v.v_w_end 0 (Array.length v.v_w_end) m

let v_first_init_at_or_above v m =
  bs_at_or_above v.v_w_init 0 (Array.length v.v_w_init) m

let snap_i_old snap ~class_id ~at =
  let v = view_of snap class_id in
  let best =
    match v.v_actives with
    | (_, init) :: _ when init < at -> init
    | _ -> at
  in
  let i = v_first_end_above v at in
  if i < Array.length v.v_w_end && Array.unsafe_get v.v_w_init i < best then
    Array.unsafe_get v.v_w_init i
  else best

let snap_c_late snap ~class_id ~at =
  let v = view_of snap class_id in
  match v.v_actives with
  | (id, init) :: _ when init < at -> Error id
  | _ ->
    let i = v_first_init_at_or_above v at in
    if i > 0 && v.v_w_end.(i - 1) > at then Ok v.v_w_end.(i - 1) else Ok at

let snap_parts snap =
  Array.map
    (fun v ->
      ( v.v_actives,
        Array.init (Array.length v.v_w_init) (fun i ->
            (v.v_w_init.(i), v.v_w_end.(i))),
        v.v_gen ))
    snap.views

let snapshot_of_parts parts =
  let views =
    Array.map
      (fun (actives, windows, gen) ->
        let rec check_actives = function
          | (_, a) :: ((_, b) :: _ as rest) ->
            if a >= b then
              invalid_arg "Registry.snapshot_of_parts: actives not ascending"
            else check_actives rest
          | _ -> ()
        in
        check_actives actives;
        Array.iteri
          (fun i (init, endt) ->
            if init >= endt then
              invalid_arg "Registry.snapshot_of_parts: empty window";
            if
              i > 0
              && (fst windows.(i - 1) >= init || snd windows.(i - 1) >= endt)
            then
              invalid_arg "Registry.snapshot_of_parts: windows not ascending")
          windows;
        { v_actives = actives;
          v_w_init = Array.map fst windows;
          v_w_end = Array.map snd windows;
          v_gen = gen })
      parts
  in
  if Array.length views = 0 then
    invalid_arg "Registry.snapshot_of_parts: no classes";
  { views }

(* First record index at or after [i] that has not finished by [upto].
   Top-level recursion: [prune] runs on the engine's steady-state commit
   path (every K commits), which must stay allocation-free. *)
let rec prune_records records len i upto =
  if
    i < len
    &&
    match (Array.unsafe_get records i).Txn.status with
    | Txn.Committed e | Txn.Aborted e -> e <= upto
    | Txn.Active -> false
  then prune_records records len (i + 1) upto
  else i

let prune_log log upto =
  sync log;
  let i = prune_records log.records log.len log.base upto in
  let dropped_records = i - log.base in
  log.base <- i;
  (* windows closed at or before [upto] can serve no query at >= upto *)
  let w = first_end_above log upto in
  let dropped = dropped_records + (w - log.w_base) in
  log.w_base <- w;
  dropped

let prune t ~upto =
  match t.trace with
  | None ->
    let logs = t.logs in
    for c = 0 to Array.length logs - 1 do
      ignore (prune_log logs.(c) upto)
    done
  | Some tr ->
    let records_dropped = ref 0 and windows_dropped = ref 0 in
    Array.iter
      (fun log ->
        sync log;
        let i = prune_records log.records log.len log.base upto in
        records_dropped := !records_dropped + (i - log.base);
        log.base <- i;
        let w = first_end_above log upto in
        windows_dropped := !windows_dropped + (w - log.w_base);
        log.w_base <- w)
      t.logs;
    Hdd_obs.Trace.emit_here tr
      (Hdd_obs.Trace.Registry_prune
         { upto;
           records_dropped = !records_dropped;
           windows_dropped = !windows_dropped })
