(** A data granule: the smallest unit of access visible to concurrency
    control (§4.0, Notations).  A granule is addressed by the segment it
    lives in and a key within that segment. *)

type t = { segment : int; key : int }

val make : segment:int -> key:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
