(** The multi-version schedule of §2.0: the ordered sequence of steps
    [<transaction id, action, version of a data granule>].

    Every controller in the repository (HDD and all baselines) appends its
    granted accesses here; the serializability certifier replays the log to
    build the transaction dependency graph.  A version is identified by the
    write timestamp of the transaction that created it, which is unique per
    granule because writers of one granule carry distinct timestamps. *)

type action = Read | Write

type step = {
  txn : Txn.id;
  action : action;
  granule : Granule.t;
  version : Time.t;  (** write timestamp of the version read or created *)
}

type t

val create : unit -> t
val log_read : t -> txn:Txn.id -> granule:Granule.t -> version:Time.t -> unit
val log_write : t -> txn:Txn.id -> granule:Granule.t -> version:Time.t -> unit

val drop_txn : t -> Txn.id -> unit
(** Erase the steps of an aborted transaction: the final schedule contains
    committed work only (the paper's formalism has no aborts). *)

val steps : t -> step list
(** In append order, aborted-and-dropped steps excluded. *)

val length : t -> int
val pp_step : Format.formatter -> step -> unit
