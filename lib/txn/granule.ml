type t = { segment : int; key : int }

let make ~segment ~key = { segment; key }

let compare a b =
  match Int.compare a.segment b.segment with
  | 0 -> Int.compare a.key b.key
  | c -> c

let equal a b = a.segment = b.segment && a.key = b.key
let hash a = (a.segment * 1000003) lxor a.key
let pp ppf a = Format.fprintf ppf "D%d/%d" a.segment a.key
let to_string a = Format.asprintf "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
