(** Logical time.

    The paper's protocols are defined entirely over the order of initiation
    and commit events, so a strictly monotone logical clock reproduces them
    exactly (see DESIGN.md, substitutions).  Times are positive integers;
    [zero] is reserved for the bootstrap transaction that installs initial
    database versions. *)

type t = int

val zero : t
val compare : t -> t -> int
val equal : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A strictly monotone event clock.  Every call to {!tick} returns a fresh,
    strictly larger time, so initiation and commit instants are unique and
    totally ordered — the property all the activity-link reasoning rests
    on. *)
module Clock : sig
  type clock

  val create : unit -> clock
  val tick : clock -> t
  val now : clock -> t
  (** Last time handed out (0 initially). *)

  val catch_up : clock -> t -> unit
  (** Advance the clock so the next {!tick} is strictly after the given
      time; never moves it backwards.  Used by crash recovery to restart
      a scheduler past every timestamp in the recovered log. *)
end
