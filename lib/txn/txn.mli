(** Transaction records.

    A transaction carries its identifier, the class it belongs to (the
    paper's transaction classification, §3.2 — read-only transactions have
    no class), its initiation time [I(t)] and, once finished, its commit or
    abort time.  Records are mutable: the scheduler transitions their
    status; everything else is frozen at creation. *)

type id = int

type kind =
  | Update of int  (** member of update class [Ti]; the int is [i] *)
  | Read_only

type status =
  | Active
  | Committed of Time.t  (** [C(t)] *)
  | Aborted of Time.t

type t = {
  id : id;
  kind : kind;
  init : Time.t;  (** [I(t)] *)
  mutable status : status;
}

val bootstrap : t
(** The fictitious transaction 0 that wrote every initial version at time
    zero and committed at time zero.  Gives every granule a first version
    and the dependency graph a root. *)

val make : id:id -> kind:kind -> init:Time.t -> t
val is_update : t -> bool
val class_of : t -> int option
val is_active : t -> bool
val is_committed : t -> bool
val is_aborted : t -> bool

val end_time : t -> Time.t option
(** Commit or abort instant; [None] while active. *)

val active_at : t -> Time.t -> bool
(** [active_at t m]: the paper's "uncommitted and un-aborted at [m]" with
    its strict boundary convention — [I(t) < m] and end time [> m].  The
    strictness at initiation is load-bearing: Properties 2.1/2.2 of the
    activity-link machinery fail at boundary instants under an inclusive
    reading. *)

val commit : t -> at:Time.t -> unit
(** @raise Invalid_argument if not active or [at <= init]. *)

val abort : t -> at:Time.t -> unit
(** @raise Invalid_argument if not active or [at <= init]. *)

val pp : Format.formatter -> t -> unit
