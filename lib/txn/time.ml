type t = int

let zero = 0
let compare = Int.compare
let equal = Int.equal
let max = Int.max
let min = Int.min
let pp = Format.pp_print_int
let to_string = string_of_int

module Clock = struct
  type clock = { mutable now : int }

  let create () = { now = 0 }

  let tick c =
    c.now <- c.now + 1;
    c.now

  let now c = c.now

  let catch_up c t = if t > c.now then c.now <- t
end
