module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type t = { succ : ISet.t IMap.t; pred : ISet.t IMap.t }

let empty = { succ = IMap.empty; pred = IMap.empty }

let neighbours m u = try IMap.find u m with Not_found -> ISet.empty

let add_node g u =
  if IMap.mem u g.succ then g
  else
    { succ = IMap.add u ISet.empty g.succ;
      pred = IMap.add u ISet.empty g.pred }

let add_arc g u v =
  if u = v then invalid_arg "Digraph.add_arc: self-loop";
  let g = add_node (add_node g u) v in
  { succ = IMap.add u (ISet.add v (neighbours g.succ u)) g.succ;
    pred = IMap.add v (ISet.add u (neighbours g.pred v)) g.pred }

let remove_arc g u v =
  { succ = IMap.add u (ISet.remove v (neighbours g.succ u)) g.succ;
    pred = IMap.add v (ISet.remove u (neighbours g.pred v)) g.pred }

let nodes g = IMap.fold (fun u _ acc -> u :: acc) g.succ [] |> List.rev

let arcs g =
  IMap.fold
    (fun u vs acc -> ISet.fold (fun v acc -> (u, v) :: acc) vs acc)
    g.succ []
  |> List.sort compare

let mem_node g u = IMap.mem u g.succ
let mem_arc g u v = ISet.mem v (neighbours g.succ u)
let succ g u = ISet.elements (neighbours g.succ u)
let pred g u = ISet.elements (neighbours g.pred u)
let node_count g = IMap.cardinal g.succ
let arc_count g = IMap.fold (fun _ vs n -> n + ISet.cardinal vs) g.succ 0

let equal a b =
  IMap.equal ISet.equal a.succ b.succ
  && List.equal Int.equal (nodes a) (nodes b)

let of_arcs l = List.fold_left (fun g (u, v) -> add_arc g u v) empty l

let fold_arcs f g acc =
  IMap.fold
    (fun u vs acc -> ISet.fold (fun v acc -> f u v acc) vs acc)
    g.succ acc

let reachable g start =
  let rec visit seen u =
    if ISet.mem u seen then seen
    else ISet.fold (fun v seen -> visit seen v)
           (neighbours g.succ u) (ISet.add u seen)
  in
  ISet.elements (visit ISet.empty start)

let has_path g u v =
  if u = v then mem_node g u
  else
    let rec visit seen w =
      if w = v then raise Exit;
      if ISet.mem w seen then seen
      else ISet.fold (fun x seen -> visit seen x)
             (neighbours g.succ w) (ISet.add w seen)
    in
    try ignore (visit ISet.empty u); false with Exit -> true

let topological_sort g =
  (* Kahn's algorithm; deterministic because candidates come from a set. *)
  let indeg =
    IMap.fold
      (fun u _ acc -> IMap.add u (ISet.cardinal (neighbours g.pred u)) acc)
      g.succ IMap.empty
  in
  let zero =
    IMap.fold (fun u d acc -> if d = 0 then ISet.add u acc else acc)
      indeg ISet.empty
  in
  let rec go zero indeg acc =
    match ISet.min_elt_opt zero with
    | None -> Some (List.rev acc)
    | Some u ->
      let zero = ISet.remove u zero in
      let indeg, zero =
        ISet.fold
          (fun v (indeg, zero) ->
            let d = IMap.find v indeg - 1 in
            (IMap.add v d indeg, if d = 0 then ISet.add v zero else zero))
          (neighbours g.succ u) (IMap.add u (-1) indeg, zero)
      in
      go zero indeg (u :: acc)
  in
  match go zero indeg [] with
  | Some order when List.length order = node_count g -> Some order
  | _ -> None

let is_acyclic g = topological_sort g <> None

let find_cycle g =
  (* DFS with colouring; returns the first back-edge cycle found. *)
  let state = Hashtbl.create 16 in
  (* state: 0 = white (absent), 1 = grey, 2 = black *)
  let exception Found of int list in
  let rec visit path u =
    match Hashtbl.find_opt state u with
    | Some 2 -> ()
    | Some 1 ->
      (* u is on the current path (and also sits at the head of [path],
         pushed by the recursive call): cut the prefix before u's first
         occurrence and drop the trailing duplicate *)
      let rec cut = function
        | [] -> []
        | x :: rest -> if x = u then x :: rest else cut rest
      in
      let cycle =
        match List.rev (cut (List.rev path)) with
        | _duplicate :: rest -> List.rev rest
        | [] -> []
      in
      raise (Found cycle)
    | _ ->
      Hashtbl.replace state u 1;
      ISet.iter (fun v -> visit (v :: path) v) (neighbours g.succ u);
      Hashtbl.replace state u 2
  in
  try
    IMap.iter (fun u _ -> visit [u] u) g.succ;
    None
  with Found c -> Some c

let scc g =
  (* Tarjan's algorithm, iterative bookkeeping via recursion on OCaml stack
     is fine for the graph sizes here (class graphs and dependency graphs of
     tens of thousands of nodes at most). *)
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strong u =
    Hashtbl.replace index u !counter;
    Hashtbl.replace lowlink u !counter;
    incr counter;
    stack := u :: !stack;
    Hashtbl.replace on_stack u true;
    ISet.iter
      (fun v ->
        if not (Hashtbl.mem index v) then begin
          strong v;
          Hashtbl.replace lowlink u
            (Int.min (Hashtbl.find lowlink u) (Hashtbl.find lowlink v))
        end
        else if Hashtbl.find_opt on_stack v = Some true then
          Hashtbl.replace lowlink u
            (Int.min (Hashtbl.find lowlink u) (Hashtbl.find index v)))
      (neighbours g.succ u);
    if Hashtbl.find lowlink u = Hashtbl.find index u then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | v :: rest ->
          stack := rest;
          Hashtbl.replace on_stack v false;
          if v = u then v :: acc else pop (v :: acc)
      in
      components := List.sort compare (pop []) :: !components
    end
  in
  IMap.iter (fun u _ -> if not (Hashtbl.mem index u) then strong u) g.succ;
  List.rev !components

let transitive_closure g =
  List.fold_left
    (fun acc u ->
      List.fold_left
        (fun acc v -> if v = u then acc else add_arc acc u v)
        acc (reachable g u))
    (IMap.fold (fun u _ acc -> add_node acc u) g.succ empty)
    (nodes g)

let transitive_reduction g =
  if not (is_acyclic g) then
    invalid_arg "Digraph.transitive_reduction: cyclic graph";
  let closure = transitive_closure g in
  (* u -> v is redundant iff some other successor w of u reaches v. *)
  fold_arcs
    (fun u v acc ->
      let redundant =
        ISet.exists
          (fun w -> w <> v && mem_arc closure w v)
          (neighbours g.succ u)
      in
      if redundant then remove_arc acc u v else acc)
    g g

let undirected_neighbours g u =
  ISet.union (neighbours g.succ u) (neighbours g.pred u)

let is_semi_tree g =
  (* No antiparallel pair (that would be a duplicated undirected edge), and
     the undirected view is acyclic — together: at most one undirected path
     between any pair of nodes. *)
  let antiparallel =
    fold_arcs (fun u v bad -> bad || mem_arc g v u) g false
  in
  if antiparallel then false
  else begin
    (* union-find over undirected edges *)
    let parent = Hashtbl.create 16 in
    let rec find u =
      match Hashtbl.find_opt parent u with
      | None | Some (-1) -> u
      | Some p ->
        let r = find p in
        Hashtbl.replace parent u r;
        r
    in
    let ok =
      fold_arcs
        (fun u v ok ->
          ok
          &&
          let ru = find u and rv = find v in
          if ru = rv then false
          else begin
            Hashtbl.replace parent ru rv;
            true
          end)
        g true
    in
    ok
  end

let is_transitive_semi_tree g =
  is_acyclic g && is_semi_tree (transitive_reduction g)

let critical_arcs g = arcs (transitive_reduction g)

let critical_path g i j =
  if not (mem_node g i) || not (mem_node g j) then None
  else if i = j then Some [ i ]
  else
    let reduction = transitive_reduction g in
    (* In a semi-tree there is at most one directed path; plain DFS finds
       it.  We do not assume the semi-tree property here so a defensive DFS
       with a visited set is used. *)
    let rec dfs seen u =
      if u = j then Some [ j ]
      else if ISet.mem u seen then None
      else
        let seen = ISet.add u seen in
        ISet.fold
          (fun v found ->
            match found with
            | Some _ -> found
            | None -> (
              match dfs seen v with
              | Some path -> Some (u :: path)
              | None -> None))
          (neighbours reduction.succ u)
          None
    in
    dfs ISet.empty i

let higher_than g j i = i <> j && critical_path g i j <> None

let undirected_critical_path g i j =
  if not (mem_node g i) || not (mem_node g j) then None
  else if i = j then Some [ i ]
  else
    let reduction = transitive_reduction g in
    (* BFS over the undirected view of the reduction; in a semi-tree the
       path found is the unique one. *)
    let parent = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add i q;
    Hashtbl.replace parent i i;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      if u = j then found := true
      else
        ISet.iter
          (fun v ->
            if not (Hashtbl.mem parent v) then begin
              Hashtbl.replace parent v u;
              Queue.add v q
            end)
          (undirected_neighbours reduction u)
    done;
    if not !found then None
    else begin
      let rec build u acc =
        if u = i then u :: acc else build (Hashtbl.find parent u) (u :: acc)
      in
      Some (build j [])
    end

let to_dot ?(name = "g") ?(label = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun u -> Buffer.add_string buf (Printf.sprintf "  n%d [label=%S];\n" u (label u)))
    (nodes g);
  let critical =
    if is_acyclic g then
      List.fold_left (fun s a -> a :: s) [] (critical_arcs g)
    else arcs g
  in
  List.iter
    (fun (u, v) ->
      let style = if List.mem (u, v) critical then "solid" else "dashed" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [style=%s];\n" u v style))
    (arcs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
