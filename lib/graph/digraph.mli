(** Persistent directed graphs over integer node identifiers.

    This is the graph substrate for the paper's §3: data hierarchy graphs,
    transaction hierarchy graphs, transitive semi-trees, critical paths and
    undirected critical paths, plus the dependency graphs of the
    serializability certifier (§2). *)

type t

val empty : t

val add_node : t -> int -> t
(** Idempotent. *)

val add_arc : t -> int -> int -> t
(** [add_arc g u v] adds nodes [u], [v] and the arc [u -> v].  Self-loops
    are rejected with [Invalid_argument]: neither a DHG nor a dependency
    graph ever carries one (a DHG arc requires [i <> j]; a transaction never
    depends on itself). *)

val remove_arc : t -> int -> int -> t

val nodes : t -> int list
(** Sorted ascending. *)

val arcs : t -> (int * int) list
(** Sorted lexicographically. *)

val mem_node : t -> int -> bool
val mem_arc : t -> int -> int -> bool
val succ : t -> int -> int list
val pred : t -> int -> int list
val node_count : t -> int
val arc_count : t -> int

val equal : t -> t -> bool
(** Same node set and same arc set. *)

val of_arcs : (int * int) list -> t

val fold_arcs : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Traversal and ordering} *)

val reachable : t -> int -> int list
(** Nodes reachable from the given node, including itself.  Sorted. *)

val has_path : t -> int -> int -> bool
(** Directed path of length >= 0. *)

val topological_sort : t -> int list option
(** [None] when the graph is cyclic. *)

val is_acyclic : t -> bool

val find_cycle : t -> int list option
(** Some witness cycle [v0; v1; ...; vk] with arcs [v0->v1->...->vk->v0],
    or [None] for acyclic graphs. *)

val scc : t -> int list list
(** Strongly connected components (Tarjan), each sorted, in reverse
    topological order of the condensation. *)

(** {1 Closure and reduction} *)

val transitive_closure : t -> t
(** Adds [u -> v] whenever a directed path [u ->+ v] exists. *)

val transitive_reduction : t -> t
(** Unique minimal subgraph with the same closure.  Only defined on acyclic
    graphs.  @raise Invalid_argument on a cyclic input. *)

(** {1 Semi-trees (§3.1)} *)

val is_semi_tree : t -> bool
(** At most one undirected path between any pair of nodes: the undirected
    view is simple (no antiparallel arc pairs) and acyclic. *)

val is_transitive_semi_tree : t -> bool
(** Acyclic and its transitive reduction is a semi-tree. *)

val critical_arcs : t -> (int * int) list
(** The arcs of the transitive reduction — the paper's critical arcs.
    @raise Invalid_argument on a cyclic input. *)

val critical_path : t -> int -> int -> int list option
(** [critical_path g i j] is the unique directed path from [i] to [j]
    composed of critical arcs alone, as a node list [i; ...; j], when it
    exists.  [Some [i]] when [i = j].  Requires a transitive semi-tree. *)

val higher_than : t -> int -> int -> bool
(** The paper's [Tj ↑ Ti] partial order: [higher_than g j i] iff the
    critical path [CP_i^j] exists, i.e. [critical_path g i j <> None] and
    [i <> j]. *)

val undirected_critical_path : t -> int -> int -> int list option
(** The paper's UCP: the unique undirected path through the transitive
    reduction, as the ordered node list [<i, ..., j>].  [Some [i]] when
    [i = j]; [None] when [i] and [j] live in different components. *)

(** {1 Export} *)

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** Graphviz rendering; critical arcs get solid edges and transitively
    induced arcs dashed ones when the graph is acyclic. *)
