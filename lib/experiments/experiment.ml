type outcome = Exp_types.outcome = {
  id : string;
  title : string;
  source : string;
  tables : Hdd_util.Table.t list;
  checks : (string * bool) list;
  notes : string list;
}

let all () =
  [ ("E1", E01_lost_update.run);
    ("E2", E02_partition.run);
    ("E3", E03_fig3.run);
    ("E4", E04_fig4.run);
    ("E5", E05_tst.run);
    ("E6", E06_activity_trace.run);
    ("E7", E07_follows.run);
    ("E8", E08_hosted_ro.run);
    ("E9", E09_timewall.run);
    ("E10", E10_comparison.run);
    ("E11", E11_read_sweep.run);
    ("E12", E12_contention.run);
    ("E13", E13_wall_interval.run);
    ("E14", E14_adhoc.run);
    ("E15", E15_messages.run);
    ("E16", E16_load_latency.run) ]

let run id =
  let _, f =
    List.find (fun (id', _) -> String.equal id id') (all ())
  in
  f ()

let run_all () = List.map (fun (_, f) -> f ()) (all ())

let passed o = List.for_all snd o.checks

let print o =
  Printf.printf "\n=== %s — %s (%s) ===\n\n" o.id o.title o.source;
  List.iter Hdd_util.Table.print o.tables;
  if o.checks <> [] then begin
    Printf.printf "Checks:\n";
    List.iter
      (fun (claim, ok) ->
        Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") claim)
      o.checks
  end;
  if o.notes <> [] then begin
    Printf.printf "Notes:\n";
    List.iter (fun n -> Printf.printf "  - %s\n" n) o.notes
  end;
  print_newline ()
