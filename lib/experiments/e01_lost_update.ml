(* E1 — Figure 1: the lost-update anomaly.

   Smith's account holds $100; t1 deposits $50 while t2 withdraws $50,
   with the paper's exact interleaving (both read, both compute, both
   write).  Without concurrency control the final balance is $50 — one
   update lost — and the certifier flags the schedule.  Every controller
   in the repository prevents the loss. *)

module B = Hdd_baselines
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Table = Hdd_util.Table

let account = Granule.make ~segment:0 ~key:0

let grant = function
  | Outcome.Granted v -> `Value v
  | Outcome.Blocked ids -> `Blocked ids
  | Outcome.Rejected why -> `Rejected why

(* Drive the Figure 1 interleaving through a generic controller; blocked
   or rejected steps are resolved the way the controller dictates (wait
   for the blocker, or restart the loser). *)
let figure1_interleaving ~read ~write ~begin_txn ~commit ~abort =
  let t1 = begin_txn () in
  let t2 = begin_txn () in
  let b1 = read t1 account in
  let b2 = read t2 account in
  match (b1, b2) with
  | `Value b1v, `Value b2v ->
    (* both reads were admitted concurrently: attempt both writes *)
    let w1 = write t1 account (b1v + 50) in
    let finish1 =
      match w1 with
      | `Value () ->
        commit t1;
        `Committed
      | `Rejected _ ->
        abort t1;
        `Restarted
      | `Blocked _ -> `Blocked
    in
    let w2 = write t2 account (b2v - 50) in
    let finish2 =
      match w2 with
      | `Value () ->
        commit t2;
        `Committed
      | `Rejected _ ->
        abort t2;
        `Restarted
      | `Blocked _ ->
        (* t1 has finished by now in every controller here; retry once *)
        (match write t2 account (b2v - 50) with
        | `Value () ->
          commit t2;
          `Committed
        | `Rejected _ ->
          abort t2;
          `Restarted
        | `Blocked _ ->
          abort t2;
          `Stuck)
    in
    (finish1, finish2)
  | `Value _, (`Blocked _ | `Rejected _) ->
    (* t2's read already refused: the interleaving is impossible *)
    (match write t1 account 150 with
    | `Value () -> commit t1
    | _ -> abort t1);
    (match b2 with
    | `Rejected _ -> abort t2
    | _ ->
      (* blocked: t1 finished, redo the whole of t2 serially *)
      (match read t2 account with
      | `Value v -> (
        match write t2 account (v - 50) with
        | `Value () -> commit t2
        | _ -> abort t2)
      | _ -> abort t2));
    (`Committed, `Serialized)
  | _ -> (`Stuck, `Stuck)

(* Re-run a restarted transaction (with its own delta) to completion so
   the business outcome is comparable across controllers. *)
let settle ~read ~write ~begin_txn ~commit ~delta = function
  | `Restarted ->
    let t = begin_txn () in
    (match read t account with
    | `Value v -> (
      match write t account (v + delta) with
      | `Value () -> commit t
      | _ -> ())
    | _ -> ())
  | _ -> ()

let controllers () =
  let init _ = 100 in
  let clock () = Time.Clock.create () in
  [ ("NoCC",
     fun log ->
       let c = B.Nocc.create ~log ~clock:(clock ()) ~init () in
       ((fun () -> B.Nocc.begin_txn c),
        (fun t g -> grant (B.Nocc.read c t g)),
        (fun t g v -> grant (B.Nocc.write c t g v)),
        (fun t -> B.Nocc.commit c t),
        (fun t -> B.Nocc.abort c t),
        (fun () ->
          let t = B.Nocc.begin_txn c in
          match grant (B.Nocc.read c t account) with
          | `Value v ->
            B.Nocc.commit c t;
            v
          | _ -> min_int)));
    ("2PL",
     fun log ->
       let c = B.S2pl.create ~log ~clock:(clock ()) ~init () in
       ((fun () -> B.S2pl.begin_txn c ~read_only:false),
        (fun t g -> grant (B.S2pl.read c t g)),
        (fun t g v -> grant (B.S2pl.write c t g v)),
        (fun t -> B.S2pl.commit c t),
        (fun t -> B.S2pl.abort c t),
        (fun () ->
          let t = B.S2pl.begin_txn c ~read_only:false in
          match grant (B.S2pl.read c t account) with
          | `Value v ->
            B.S2pl.commit c t;
            v
          | _ -> min_int)));
    ("TSO",
     fun log ->
       let c = B.Tso.create ~log ~clock:(clock ()) ~init () in
       ((fun () -> B.Tso.begin_txn c),
        (fun t g -> grant (B.Tso.read c t g)),
        (fun t g v -> grant (B.Tso.write c t g v)),
        (fun t -> B.Tso.commit c t),
        (fun t -> B.Tso.abort c t),
        (fun () ->
          let t = B.Tso.begin_txn c in
          match grant (B.Tso.read c t account) with
          | `Value v ->
            B.Tso.commit c t;
            v
          | _ -> min_int)));
    ("MVTO",
     fun log ->
       let c = B.Mvto.create ~log ~clock:(clock ()) ~segments:1 ~init () in
       ((fun () -> B.Mvto.begin_txn c),
        (fun t g -> grant (B.Mvto.read c t g)),
        (fun t g v -> grant (B.Mvto.write c t g v)),
        (fun t -> B.Mvto.commit c t),
        (fun t -> B.Mvto.abort c t),
        (fun () ->
          let t = B.Mvto.begin_txn c in
          match grant (B.Mvto.read c t account) with
          | `Value v ->
            B.Mvto.commit c t;
            v
          | _ -> min_int))) ]

let run () =
  let table =
    Table.create ~title:"E1 (Figure 1): lost update — deposit $50, withdraw $50 from $100"
      ~columns:
        [ "controller"; "final balance"; "update lost"; "serializable" ]
  in
  let checks = ref [] in
  List.iter
    (fun (name, build) ->
      let log = Sched_log.create () in
      let begin_txn, read, write, commit, abort, balance = build log in
      let f1, f2 =
        figure1_interleaving ~read ~write ~begin_txn ~commit ~abort
      in
      settle ~read ~write ~begin_txn ~commit ~delta:50 f1;
      settle ~read ~write ~begin_txn ~commit ~delta:(-50) f2;
      let final = balance () in
      let serializable = Certifier.serializable log in
      let lost = final <> 100 in
      Table.add_row table
        [ name; string_of_int final; (if lost then "YES" else "no");
          (if serializable then "yes" else "NO") ];
      if name = "NoCC" then
        checks :=
          ("NoCC loses the update and certifies non-serializable",
           lost && not serializable)
          :: !checks
      else
        checks :=
          (name ^ " preserves the balance and serializability",
           (not lost) && serializable)
          :: !checks)
    (controllers ());
  { Exp_types.id = "E1";
    title = "Lost update under concurrent deposit/withdraw";
    source = "Figure 1, §1.1";
    tables = [ table ];
    checks = List.rev !checks;
    notes =
      [ "The paper's interleaving: both transactions read the $100 \
         balance before either write lands.";
        "Controllers that refuse the interleaving (2PL blocks, TSO/MVTO \
         reject a late write) serialize or restart the withdrawal; the \
         business outcome is $100 in every controlled run." ] }
