(* E11 — §1.2/§6: read-synchronisation overhead as the share of
   cross-class reads grows.

   A three-level chain where each update transaction's reads go to higher
   segments with probability f.  The registrations-per-transaction curve
   is the paper's claimed saving: HDD's falls towards zero with f while
   every registering protocol stays flat. *)

module Harness = Hdd_sim.Harness
module Runner = Hdd_sim.Runner
module Workload = Hdd_sim.Workload
module Controller = Hdd_sim.Controller
module Table = Hdd_util.Table

let config =
  { Runner.default_config with Runner.mpl = 8; target_commits = 800; seed = 5 }

let specs = [ Harness.Hdd; Harness.Mvto; Harness.S2pl; Harness.Sdd1 ]

let run () =
  let fractions = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let table =
    Table.create
      ~title:
        "E11: read registrations per committed txn vs cross-class read \
         fraction (chain depth 3)"
      ~columns:
        ("cross-read f"
         :: List.concat_map
              (fun s -> [ Harness.spec_name s ^ " regs"; Harness.spec_name s ^ " tput" ])
              specs)
  in
  let results =
    List.map
      (fun f ->
        let wl =
          Workload.chain ~depth:3 ~cross_read_fraction:f ~ro_weight:0.1 ()
        in
        let row =
          List.map (fun spec -> Runner.run config wl (Harness.make spec wl)) specs
        in
        (f, row))
      fractions
  in
  List.iter
    (fun (f, row) ->
      Table.add_row table
        (Table.cell_pct f
         :: List.concat_map
              (fun (r : Runner.result) ->
                [ Table.cell_float
                    (float_of_int r.Runner.counters.Controller.read_registrations
                     /. float_of_int r.Runner.committed);
                  Table.cell_float ~decimals:3 r.Runner.throughput ])
              row))
    results;
  let regs_of spec f =
    let _, row = List.find (fun (f', _) -> f' = f) results in
    let idx = Option.get (List.find_index (( = ) spec) specs) in
    let r = List.nth row idx in
    float_of_int r.Runner.counters.Controller.read_registrations
    /. float_of_int r.Runner.committed
  in
  { Exp_types.id = "E11";
    title = "Cross-class read fraction sweep";
    source = "§1.2, §6 (claimed registration saving)";
    tables = [ table ];
    checks =
      [ ("HDD registrations fall as reads move cross-class",
         regs_of Harness.Hdd 1.0 < regs_of Harness.Hdd 0.0);
        ("at f=1 HDD registers well under half of MVTO's",
         regs_of Harness.Hdd 1.0 < 0.5 *. regs_of Harness.Mvto 1.0);
        ("MVTO stays flat and high",
         regs_of Harness.Mvto 1.0 > 1.0 && regs_of Harness.Mvto 0.0 > 1.0);
        ("2PL stays flat and high", regs_of Harness.S2pl 1.0 > 1.0) ];
    notes =
      [ "At f=1 HDD's only registrations come from the top class, which \
         has no higher segment to read and so reads its own root segment \
         through protocol B; all other classes register nothing." ] }
