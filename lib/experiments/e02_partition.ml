(* E2 — Figure 2 / §1.2.1: the retail inventory decomposition.

   Transaction analysis of the three update types yields the data
   hierarchy graph; the partition validates as TST-hierarchical and the
   classification roots each type in its write segment. *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module G = Hdd_graph.Digraph
module Table = Hdd_util.Table

let spec =
  Spec.make
    ~segments:[ "reorders"; "inventory"; "events" ]
    ~types:
      [ Spec.txn_type ~name:"type1-log-event" ~writes:[ 2 ] ~reads:[];
        Spec.txn_type ~name:"type2-recompute-level" ~writes:[ 1 ]
          ~reads:[ 1; 2 ];
        Spec.txn_type ~name:"type3-reorder" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ]

let run () =
  let analysis =
    Table.create ~title:"E2 (Figure 2): transaction analysis of the inventory application"
      ~columns:[ "transaction type"; "writes"; "reads"; "class" ]
  in
  Array.iter
    (fun (ty : Spec.txn_type) ->
      let seg i = Printf.sprintf "D%d:%s" i (Spec.segment_name spec i) in
      Table.add_row analysis
        [ ty.Spec.type_name;
          String.concat " " (List.map seg ty.Spec.writes);
          String.concat " " (List.map seg ty.Spec.reads);
          Printf.sprintf "T%d" (List.hd ty.Spec.writes) ])
    spec.Spec.types;
  let dhg = Partition.dhg_of_spec spec in
  let p = Partition.build_exn spec in
  let graph =
    Table.create ~title:"Data hierarchy graph DHG(P,Tu)"
      ~columns:[ "arc"; "critical?" ]
  in
  List.iter
    (fun (i, j) ->
      Table.add_row graph
        [ Printf.sprintf "D%d -> D%d" i j;
          (if G.mem_arc p.Partition.reduction i j then "yes"
           else "no (transitively induced)") ])
    (G.arcs dhg);
  let checks =
    [ ("the inventory DHG is a transitive semi-tree",
       G.is_transitive_semi_tree dhg);
      ("the arc D0 -> D2 is transitively induced",
       G.mem_arc dhg 0 2 && not (G.mem_arc p.Partition.reduction 0 2));
      ("events sit above inventory above reorders",
       Partition.higher_than p 2 0 && Partition.higher_than p 1 0
       && Partition.higher_than p 2 1);
      ("the reorder class is the lowest",
       Partition.lowest_classes p = [ 0 ]) ]
  in
  { Exp_types.id = "E2";
    title = "Inventory database decomposition";
    source = "Figure 2, §1.2.1, §3.2";
    tables = [ analysis; graph ];
    checks;
    notes =
      [ "DOT rendering available via `hdd_cli dot`:";
        String.trim (Partition.to_dot p) ] }
