(* E10 — Figure 10: the HDD / SDD-1 / MV2PL comparison, measured.

   The paper's table is qualitative ("never reject or block a read
   request" vs "may cause read requests to be rejected or blocked").
   Here the same three approaches — plus the classical 2PL/TSO/MVTO —
   run the inventory workload; the columns quantify exactly the
   adjectives: read registrations, blocked operations, rejections,
   restarts, throughput, and the certified serializability of the
   committed schedule. *)

module Harness = Hdd_sim.Harness
module Runner = Hdd_sim.Runner
module Workload = Hdd_sim.Workload
module Controller = Hdd_sim.Controller
module Table = Hdd_util.Table

let config =
  { Runner.default_config with Runner.mpl = 8; target_commits = 1500; seed = 11 }

let run () =
  let wl = Workload.inventory ~ro_weight:0.15 () in
  let rows =
    List.map
      (fun spec ->
        let result, serializable = Harness.certified_run ~config spec wl in
        (spec, result, serializable))
      Harness.all_controlled
  in
  let table =
    Table.create
      ~title:
        "E10 (Figure 10): protocol comparison on the inventory workload \
         (1500 committed txns, mpl 8)"
      ~columns:
        [ "protocol"; "read regs/txn"; "blocks/txn"; "rejects/txn";
          "restarts"; "throughput"; "serializable" ]
  in
  List.iter
    (fun (_, (r : Runner.result), serializable) ->
      let per x = float_of_int x /. float_of_int r.Runner.committed in
      Table.add_row table
        [ r.Runner.controller;
          Table.cell_float (per r.Runner.counters.Controller.read_registrations);
          Table.cell_float (per r.Runner.counters.Controller.blocks);
          Table.cell_float (per r.Runner.counters.Controller.rejects);
          string_of_int r.Runner.restarts;
          Table.cell_float ~decimals:3 r.Runner.throughput;
          (if serializable then "yes" else "NO") ])
    rows;
  let find spec =
    let _, r, s = List.find (fun (sp, _, _) -> sp = spec) rows in
    (r, s)
  in
  let hdd, hdd_ok = find Harness.Hdd in
  let sdd1, sdd1_ok = find Harness.Sdd1 in
  let mv2pl, mv2pl_ok = find Harness.Mv2pl in
  let s2pl, _ = find Harness.S2pl in
  let mvto, _ = find Harness.Mvto in
  let regs (r : Runner.result) = r.Runner.counters.Controller.read_registrations in
  let blocks (r : Runner.result) = r.Runner.counters.Controller.blocks in
  { Exp_types.id = "E10";
    title = "Quantified Figure 10 comparison";
    source = "Figure 10, §6.0";
    tables = [ table ];
    checks =
      [ ("every protocol's schedule certifies serializable",
         hdd_ok && sdd1_ok && mv2pl_ok);
        ("HDD registers strictly fewer reads than 2PL, MV2PL and MVTO",
         regs hdd < regs s2pl && regs hdd < regs mv2pl && regs hdd < regs mvto);
        ("SDD-1 registers no reads but blocks them (the paper's contrast)",
         regs sdd1 = 0 && blocks sdd1 > 0);
        ("HDD blocks less than SDD-1", blocks hdd < blocks sdd1);
        ("MV2PL registers a read lock per updater read", regs mv2pl > 0) ];
    notes =
      [ "Inter-class synchronisation: HDD never rejected or blocked a \
         cross-class read (its blocks/rejects come from root-segment \
         MVTO only).";
        "Figure 10's qualitative rows map to: Trans Analysis \
         (hierarchical / general / none), Inter-Class Synch (never vs \
         may block), Intra-Class Synch (TO / pipelining / 2PL), \
         Read-only handling (walls / none / snapshots)." ] }
