(* E4 — Figure 4: if read timestamps are not left, an anomaly may occur.

   The same three transactions under timestamp ordering, with initiation
   order t1 < t2 < t3.  t3 reads the arrivals before t1's insert; without
   a read timestamp on the arrival granule nothing stops t1's late write,
   and t3 later reads the inventory level derived from it — a cycle.
   Honest TSO rejects t1's write; HDD admits the timing and stays
   serializable without any read timestamp. *)

module B = Hdd_baselines
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store
module Table = Hdd_util.Table

let y = Granule.make ~segment:2 ~key:0
let v = Granule.make ~segment:1 ~key:0
let order = Granule.make ~segment:0 ~key:0

type observation = {
  name : string;
  t1_write : string;
  v_seen_by_t3 : string;
  registrations : int;
  serializable : bool;
}

let run_tso ~read_timestamps =
  let log = Sched_log.create () in
  let c =
    B.Tso.create ~read_timestamps ~log ~clock:(Time.Clock.create ())
      ~init:(fun _ -> 0) ()
  in
  let t1 = B.Tso.begin_txn c in
  let t2 = B.Tso.begin_txn c in
  let t3 = B.Tso.begin_txn c in
  ignore (B.Tso.read c t3 y);
  let w1 = B.Tso.write c t1 y 1 in
  let t1_write =
    match w1 with
    | Outcome.Granted () ->
      B.Tso.commit c t1;
      "committed"
    | Outcome.Rejected _ ->
      B.Tso.abort c t1;
      "rejected (rts)"
    | Outcome.Blocked _ -> "blocked"
  in
  (match B.Tso.read c t2 y with
  | Outcome.Granted seen ->
    ignore (B.Tso.write c t2 v (10 + seen));
    B.Tso.commit c t2
  | _ -> B.Tso.abort c t2);
  let v3 =
    match B.Tso.read c t3 v with
    | Outcome.Granted x ->
      ignore (B.Tso.write c t3 order x);
      B.Tso.commit c t3;
      string_of_int x
    | Outcome.Rejected _ ->
      B.Tso.abort c t3;
      "rejected"
    | Outcome.Blocked _ -> "blocked"
  in
  { name =
      (if read_timestamps then "TSO (full)" else "TSO without read timestamps");
    t1_write;
    v_seen_by_t3 = v3;
    registrations = (B.Tso.metrics c).B.Cc_metrics.read_registrations;
    serializable = Certifier.serializable log }

let partition = E03_fig3.partition

let run_hdd () =
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s = Scheduler.create ~log ~partition ~clock ~store () in
  (* HDD classes replace the flat TSO txns; same event order *)
  let t1 = Scheduler.begin_update s ~class_id:2 in
  let t2 = Scheduler.begin_update s ~class_id:1 in
  let t3 = Scheduler.begin_update s ~class_id:0 in
  ignore (Scheduler.read s t3 y);
  let t1_write =
    match Scheduler.write s t1 y 1 with
    | Outcome.Granted () ->
      Scheduler.commit s t1;
      "committed"
    | Outcome.Rejected _ -> "rejected"
    | Outcome.Blocked _ -> "blocked"
  in
  (match Scheduler.read s t2 y with
  | Outcome.Granted seen ->
    ignore (Scheduler.write s t2 v (10 + seen));
    Scheduler.commit s t2
  | _ -> Scheduler.abort s t2);
  let v3 =
    match Scheduler.read s t3 v with
    | Outcome.Granted x ->
      ignore (Scheduler.write s t3 order x);
      Scheduler.commit s t3;
      string_of_int x
    | Outcome.Rejected _ -> "rejected"
    | Outcome.Blocked _ -> "blocked"
  in
  { name = "HDD (protocols A+B)";
    t1_write;
    v_seen_by_t3 = v3;
    registrations = (Scheduler.metrics s).Scheduler.read_registrations;
    serializable = Certifier.serializable log }

let run () =
  let rows =
    [ run_tso ~read_timestamps:false; run_tso ~read_timestamps:true;
      run_hdd () ]
  in
  let table =
    Table.create
      ~title:
        "E4 (Figure 4): timestamp ordering with and without read stamps"
      ~columns:
        [ "regime"; "t1's late insert"; "inventory seen by t3";
          "read registrations"; "serializable" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.name; r.t1_write; r.v_seen_by_t3;
          string_of_int r.registrations;
          (if r.serializable then "yes" else "NO") ])
    rows;
  let crippled = List.nth rows 0
  and full = List.nth rows 1
  and hdd = List.nth rows 2 in
  { Exp_types.id = "E4";
    title =
      "TSO without read timestamps admits the Figure 4 anomaly; HDD does not";
    source = "Figure 4, §1.2.1";
    tables = [ table ];
    checks =
      [ ("without read timestamps the schedule is NOT serializable",
         not crippled.serializable);
        ("honest TSO rejects t1's late write", full.t1_write = "rejected (rts)");
        ("honest TSO registered t3's read", full.registrations > 0);
        ("HDD is serializable with strictly fewer registrations",
         hdd.serializable && hdd.registrations < full.registrations) ];
    notes =
      [ "HDD still registers the protocol-B read of t3's own reorder \
         segment if any; in this timing t3 touches only higher segments \
         and the inventory read goes through the activity link." ] }
