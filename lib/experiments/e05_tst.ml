(* E5 — Figure 5 / §3.1: transitive semi-tree recognition.

   The paper's example graph is accepted; perturbations — an arc that
   creates a second undirected path, a cycle, a transaction type writing
   two segments — are rejected with the matching diagnosis. *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module G = Hdd_graph.Digraph
module Table = Hdd_util.Table

let classify g =
  if not (G.is_acyclic g) then "cyclic"
  else if G.is_transitive_semi_tree g then "transitive semi-tree"
  else "acyclic but not a semi-tree"

let graphs =
  [ ("Figure 5 example (chain + shortcut + side branch)",
     G.of_arcs [ (1, 2); (2, 3); (1, 3); (4, 2) ], true);
    ("plain chain", G.of_arcs [ (0, 1); (1, 2) ], true);
    ("chain with every shortcut",
     G.of_arcs [ (0, 1); (1, 2); (2, 3); (0, 2); (0, 3); (1, 3) ], true);
    ("diamond (two undirected paths)",
     G.of_arcs [ (1, 2); (1, 3); (2, 4); (3, 4) ], false);
    ("two-cycle", G.of_arcs [ (1, 2); (2, 1) ], false);
    ("long cycle", G.of_arcs [ (1, 2); (2, 3); (3, 1) ], false);
    ("forest of two chains", G.of_arcs [ (0, 1); (2, 3) ], true);
    ("star (many leaves one root)",
     G.of_arcs [ (1, 0); (2, 0); (3, 0); (4, 0) ], true) ]

let partition_rejections () =
  let t = Table.create ~title:"Partition validation diagnoses"
      ~columns:[ "specification"; "verdict" ] in
  let try_spec name spec =
    match Partition.build spec with
    | Ok _ -> Table.add_row t [ name; "accepted" ]
    | Error e -> Table.add_row t [ name; Partition.error_to_string e ]
  in
  try_spec "type writing two segments"
    (Spec.make ~segments:[ "a"; "b" ]
       ~types:[ Spec.txn_type ~name:"bad" ~writes:[ 0; 1 ] ~reads:[] ]);
  try_spec "mutually reading classes (cycle)"
    (Spec.make ~segments:[ "a"; "b" ]
       ~types:
         [ Spec.txn_type ~name:"x" ~writes:[ 0 ] ~reads:[ 1 ];
           Spec.txn_type ~name:"y" ~writes:[ 1 ] ~reads:[ 0 ] ]);
  try_spec "class reading across two branches (diamond)"
    (Spec.make ~segments:[ "bottom"; "l"; "r"; "top" ]
       ~types:
         [ Spec.txn_type ~name:"l" ~writes:[ 1 ] ~reads:[ 3 ];
           Spec.txn_type ~name:"r" ~writes:[ 2 ] ~reads:[ 3 ];
           Spec.txn_type ~name:"b" ~writes:[ 0 ] ~reads:[ 1; 2 ] ]);
  try_spec "the inventory application" E02_partition.spec;
  t

let run () =
  let table =
    Table.create ~title:"E5 (Figure 5): transitive semi-tree recognition"
      ~columns:[ "graph"; "classification"; "expected TST?" ]
  in
  let all_correct = ref true in
  List.iter
    (fun (name, g, expected) ->
      let is_tst = G.is_transitive_semi_tree g in
      if is_tst <> expected then all_correct := false;
      Table.add_row table
        [ name; classify g; (if expected then "yes" else "no") ])
    graphs;
  { Exp_types.id = "E5";
    title = "Transitive semi-tree recognition and partition rejection";
    source = "Figure 5, §3.1-3.2";
    tables = [ table; partition_rejections () ];
    checks =
      [ ("every graph classifies as the paper prescribes", !all_correct);
        ("the Figure 5 example's critical arcs exclude the shortcut",
         G.critical_arcs (G.of_arcs [ (1, 2); (2, 3); (1, 3); (4, 2) ])
         = [ (1, 2); (2, 3); (4, 2) ]) ];
    notes = [] }
