(* E9 — Figure 9 / §5.1: the extended activity link function as a time
   wall.

   On a branching hierarchy (where no single critical path covers a
   read-only transaction's read set) the wall components E_s^i(m) are
   computed on a scripted history, and Lemma 2.1's separation — no
   topologically-follows pair crosses the wall — is verified over random
   histories. *)

module Activity = Hdd_core.Activity
module Timewall = Hdd_core.Timewall
module Follows = Hdd_core.Follows
module Partition = Hdd_core.Partition
module Spec = Hdd_core.Spec
module Table = Hdd_util.Table
module Prng = Hdd_util.Prng

(* branches 0 and 1 below the base segment 2 *)
let partition =
  Partition.build_exn
    (Spec.make ~segments:[ "left"; "right"; "base" ]
       ~types:
         [ Spec.txn_type ~name:"feed" ~writes:[ 2 ] ~reads:[];
           Spec.txn_type ~name:"left" ~writes:[ 0 ] ~reads:[ 0; 2 ];
           Spec.txn_type ~name:"right" ~writes:[ 1 ] ~reads:[ 1; 2 ] ])

let random_history ~seed ~steps =
  let rng = Prng.create seed in
  let registry = Registry.create ~classes:3 () in
  let clock = Time.Clock.create () in
  let active = ref [] in
  let all = ref [] in
  let next = ref 1 in
  for _ = 1 to steps do
    if !active = [] || Prng.bool rng then begin
      let cls = Prng.int rng 3 in
      let t =
        Txn.make ~id:!next ~kind:(Txn.Update cls)
          ~init:(Time.Clock.tick clock)
      in
      incr next;
      Registry.register registry t;
      active := t :: !active;
      all := t :: !all
    end
    else begin
      let victim = Prng.pick rng (Array.of_list !active) in
      active := List.filter (fun t -> t != victim) !active;
      Txn.commit victim ~at:(Time.Clock.tick clock)
    end
  done;
  List.iter
    (fun t -> Txn.commit t ~at:(Time.Clock.tick clock))
    (List.rev !active);
  (registry, List.rev !all, Time.Clock.now clock)

let run () =
  (* scripted wall *)
  let registry = Registry.create ~classes:3 () in
  let ctx = Activity.make_ctx partition registry in
  let mk id cls i = Txn.make ~id ~kind:(Txn.Update cls) ~init:i in
  let base = mk 1 2 3 and left = mk 2 0 5 and right = mk 3 1 7 in
  List.iter (Registry.register registry) [ base; left; right ];
  Txn.commit base ~at:10;
  Txn.commit left ~at:12;
  Txn.commit right ~at:14;
  let table =
    Table.create ~title:"E9 (Figure 9): wall components E_s^i(m)"
      ~columns:[ "m"; "E(left)"; "E(right)"; "E(base)" ]
  in
  List.iter
    (fun m ->
      match Timewall.compute ctx ~m with
      | Ok w ->
        Table.add_row table
          [ string_of_int m; string_of_int w.(0); string_of_int w.(1);
            string_of_int w.(2) ]
      | Error id ->
        Table.add_row table
          [ string_of_int m; Printf.sprintf "blocked by t%d" id; "-"; "-" ])
    [ 2; 6; 9; 15 ];
  (* Lemma 2.1 separation over random histories *)
  let walls = ref 0 and crossings = ref 0 and pairs = ref 0 in
  for seed = 0 to 39 do
    let registry, all, horizon = random_history ~seed ~steps:60 in
    let ctx = Activity.make_ctx partition registry in
    List.iter
      (fun m ->
        match Timewall.compute ctx ~m with
        | Error _ -> ()
        | Ok wall ->
          incr walls;
          List.iter
            (fun (t1 : Txn.t) ->
              List.iter
                (fun (t2 : Txn.t) ->
                  match (Txn.class_of t1, Txn.class_of t2) with
                  | Some c1, Some c2 ->
                    if t1.Txn.init < wall.(c1) && t2.Txn.init >= wall.(c2)
                    then begin
                      incr pairs;
                      if Follows.follows ctx t1 t2 = Some true then
                        incr crossings
                    end
                  | _ -> ())
                all)
            all)
      [ 1; horizon / 3; 2 * horizon / 3; horizon ]
  done;
  let separation =
    Table.create ~title:"Lemma 2.1 separation over random histories"
      ~columns:[ "walls computed"; "old/new pairs"; "crossings" ]
  in
  Table.add_row separation
    [ string_of_int !walls; string_of_int !pairs; string_of_int !crossings ];
  { Exp_types.id = "E9";
    title = "Time walls separate old from new";
    source = "Figure 9, §5.1, Lemma 2.1";
    tables = [ table; separation ];
    checks =
      [ ("no topologically-follows pair ever crosses a wall",
         !crossings = 0);
        ("the sweep sampled real walls and pairs", !walls > 50 && !pairs > 1000) ];
    notes =
      [ "Scripted history: base [3,10], left [5,12], right [7,14]; the \
         wall anchored inside those windows pins every component below \
         the oldest relevant activity." ] }
