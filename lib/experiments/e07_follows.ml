(* E7 — Figure 7 / §4.3: the topologically-follows relation.

   The three defining cases on a scripted history, then Property 1.1
   (antisymmetry) and Property 1.2 (critical-path transitivity) verified
   exhaustively over many random histories. *)

module Activity = Hdd_core.Activity
module Follows = Hdd_core.Follows
module Table = Hdd_util.Table
module Prng = Hdd_util.Prng

let partition = E03_fig3.partition

let random_history ~seed ~steps =
  let rng = Prng.create seed in
  let registry = Registry.create ~classes:3 () in
  let clock = Time.Clock.create () in
  let active = ref [] in
  let all = ref [] in
  let next = ref 1 in
  for _ = 1 to steps do
    if !active = [] || Prng.bool rng then begin
      let cls = Prng.int rng 3 in
      let t =
        Txn.make ~id:!next ~kind:(Txn.Update cls)
          ~init:(Time.Clock.tick clock)
      in
      incr next;
      Registry.register registry t;
      active := t :: !active;
      all := t :: !all
    end
    else begin
      let arr = Array.of_list !active in
      let victim = Prng.pick rng arr in
      active := List.filter (fun t -> t != victim) !active;
      Txn.commit victim ~at:(Time.Clock.tick clock)
    end
  done;
  List.iter
    (fun t -> Txn.commit t ~at:(Time.Clock.tick clock))
    (List.rev !active);
  (registry, List.rev !all)

let run () =
  (* scripted cases: reuse the E6 history *)
  let registry = Registry.create ~classes:3 () in
  let ctx = Activity.make_ctx partition registry in
  let mk id cls i = Txn.make ~id ~kind:(Txn.Update cls) ~init:i in
  let ta = mk 1 2 2 and td = mk 2 1 4 and tb = mk 3 2 6 and tf = mk 4 0 8 in
  List.iter (Registry.register registry) [ ta; td; tb; tf ];
  Txn.commit ta ~at:9;
  let cases =
    Table.create
      ~title:"E7 (Figure 7): the three cases of t1 => t2"
      ~columns:[ "pair"; "case"; "condition"; "t1 => t2?" ]
  in
  let show t1 t2 case cond =
    Table.add_row cases
      [ Printf.sprintf "t%d (T%s) vs t%d (T%s)" t1.Txn.id
          (match t1.Txn.kind with Txn.Update c -> string_of_int c | _ -> "?")
          t2.Txn.id
          (match t2.Txn.kind with Txn.Update c -> string_of_int c | _ -> "?");
        case; cond;
        (match Follows.follows ctx t1 t2 with
        | Some true -> "yes"
        | Some false -> "no"
        | None -> "undefined") ]
  in
  show tb ta "same class" "I(t1) > I(t2)";
  show ta tb "same class" "I(t1) > I(t2)";
  show ta td "t1 higher" "I(t1) >= A_1^2(I(t2))";
  show tf ta "t2 higher" "I(t2) < A_0^2(I(t1))";
  (* randomized property counts *)
  let seeds = 40 in
  let pairs = ref 0 and antisym_bad = ref 0 in
  let triples = ref 0 and trans_bad = ref 0 in
  for seed = 0 to seeds - 1 do
    let registry, all = random_history ~seed ~steps:40 in
    let ctx = Activity.make_ctx partition registry in
    List.iter
      (fun t1 ->
        List.iter
          (fun t2 ->
            if t1 != t2 then begin
              incr pairs;
              if
                Follows.follows ctx t1 t2 = Some true
                && Follows.follows ctx t2 t1 = Some true
              then incr antisym_bad
            end)
          all)
      all;
    List.iter
      (fun t1 ->
        List.iter
          (fun t2 ->
            List.iter
              (fun t3 ->
                if
                  Follows.follows ctx t1 t2 = Some true
                  && Follows.follows ctx t2 t3 = Some true
                then begin
                  incr triples;
                  if Follows.follows ctx t1 t3 <> Some true then
                    incr trans_bad
                end)
              all)
          all)
      all
  done;
  let props =
    Table.create ~title:"Properties 1.1 and 1.2 over random histories"
      ~columns:[ "property"; "instances checked"; "violations" ]
  in
  Table.add_row props
    [ "1.1 antisymmetry"; string_of_int !pairs; string_of_int !antisym_bad ];
  Table.add_row props
    [ "1.2 critical-path transitivity"; string_of_int !triples;
      string_of_int !trans_bad ];
  { Exp_types.id = "E7";
    title = "The topologically-follows relation and its properties";
    source = "Figure 7, §4.3, Appendix I";
    tables = [ cases; props ];
    checks =
      [ ("the scripted cases match the definitions",
         Follows.follows ctx tb ta = Some true
         && Follows.follows ctx ta tb = Some false);
        ("antisymmetry holds on every sampled pair", !antisym_bad = 0);
        ("transitivity holds on every sampled chain", !trans_bad = 0);
        ("a meaningful number of instances was sampled",
         !pairs > 10_000 && !triples > 100) ];
    notes = [] }
