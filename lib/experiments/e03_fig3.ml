(* E3 — Figure 3: if read locks are not used, an anomaly may occur.

   The timing: t3 (type 3) reads the merchandise-arrival records and
   misses y; t1 (type 1) inserts y and commits; t2 (type 2) reads y and
   posts the inventory level; t3 then reads the inventory level.  Under
   2PL without read locks t3 observes a level derived from a record it
   never saw — a dependency cycle.  Full 2PL blocks t1 instead, and the
   HDD scheduler serves t3 an inventory version consistent with its
   earlier reads, with no read registration at all. *)

module B = Hdd_baselines
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store
module Table = Hdd_util.Table

let y = Granule.make ~segment:2 ~key:0
let v = Granule.make ~segment:1 ~key:0
let order = Granule.make ~segment:0 ~key:0

let partition =
  Hdd_core.Partition.build_exn
    (Hdd_core.Spec.make
       ~segments:[ "reorders"; "inventory"; "events" ]
       ~types:
         [ Hdd_core.Spec.txn_type ~name:"type1" ~writes:[ 2 ] ~reads:[];
           Hdd_core.Spec.txn_type ~name:"type2" ~writes:[ 1 ] ~reads:[ 1; 2 ];
           Hdd_core.Spec.txn_type ~name:"type3" ~writes:[ 0 ]
             ~reads:[ 0; 1; 2 ] ])

type observation = {
  name : string;
  y_seen_by_t3 : string;
  v_seen_by_t3 : string;
  t1_fate : string;
  serializable : bool;
}

let value = function
  | Outcome.Granted x -> string_of_int x
  | Outcome.Blocked _ -> "blocked"
  | Outcome.Rejected _ -> "rejected"

let run_2pl ~read_locks =
  let log = Sched_log.create () in
  let c =
    B.S2pl.create ~read_locks ~log ~clock:(Time.Clock.create ())
      ~init:(fun _ -> 0) ()
  in
  let t3 = B.S2pl.begin_txn c ~read_only:false in
  let y3 = B.S2pl.read c t3 y in
  let t1 = B.S2pl.begin_txn c ~read_only:false in
  let w1 = B.S2pl.write c t1 y 1 in
  let t1_fate =
    match w1 with
    | Outcome.Granted () ->
      B.S2pl.commit c t1;
      "committed"
    | Outcome.Blocked _ ->
      (* the read lock holds it back until t3 finishes *)
      "blocked by t3's read lock"
    | Outcome.Rejected _ -> "rejected"
  in
  (* t2 runs only if t1 managed to commit (the anomaly timing) *)
  let v3 =
    if t1_fate = "committed" then begin
      let t2 = B.S2pl.begin_txn c ~read_only:false in
      (match B.S2pl.read c t2 y with
      | Outcome.Granted seen ->
        ignore (B.S2pl.write c t2 v (10 + seen));
        B.S2pl.commit c t2
      | _ -> B.S2pl.abort c t2);
      let r = B.S2pl.read c t3 v in
      ignore (B.S2pl.write c t3 order 0);
      B.S2pl.commit c t3;
      r
    end
    else begin
      (* finish t3 first, then t1 *)
      let r = B.S2pl.read c t3 v in
      ignore (B.S2pl.write c t3 order 0);
      B.S2pl.commit c t3;
      ignore (B.S2pl.write c t1 y 1);
      B.S2pl.commit c t1;
      r
    end
  in
  { name = (if read_locks then "2PL (full)" else "2PL without read locks");
    y_seen_by_t3 = value y3;
    v_seen_by_t3 = value v3;
    t1_fate;
    serializable = Certifier.serializable log }

let run_hdd () =
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s = Scheduler.create ~log ~partition ~clock ~store () in
  let t3 = Scheduler.begin_update s ~class_id:0 in
  let y3 = Scheduler.read s t3 y in
  let t1 = Scheduler.begin_update s ~class_id:2 in
  let w1 = Scheduler.write s t1 y 1 in
  let t1_fate =
    match w1 with
    | Outcome.Granted () ->
      Scheduler.commit s t1;
      "committed"
    | Outcome.Blocked _ -> "blocked"
    | Outcome.Rejected _ -> "rejected"
  in
  let t2 = Scheduler.begin_update s ~class_id:1 in
  (match Scheduler.read s t2 y with
  | Outcome.Granted seen ->
    ignore (Scheduler.write s t2 v (10 + seen));
    Scheduler.commit s t2
  | _ -> Scheduler.abort s t2);
  let v3 = Scheduler.read s t3 v in
  ignore (Scheduler.write s t3 order 0);
  Scheduler.commit s t3;
  { name = "HDD (protocol A, no registration)";
    y_seen_by_t3 = value y3;
    v_seen_by_t3 = value v3;
    t1_fate;
    serializable = Certifier.serializable log }

let run () =
  let rows =
    [ run_2pl ~read_locks:false; run_2pl ~read_locks:true; run_hdd () ]
  in
  let table =
    Table.create
      ~title:"E3 (Figure 3): the arrival record y under three regimes"
      ~columns:
        [ "regime"; "y seen by t3"; "inventory seen by t3"; "t1's insert";
          "serializable" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.name; r.y_seen_by_t3; r.v_seen_by_t3; r.t1_fate;
          (if r.serializable then "yes" else "NO") ])
    rows;
  let crippled = List.nth rows 0
  and full = List.nth rows 1
  and hdd = List.nth rows 2 in
  { Exp_types.id = "E3";
    title = "2PL without read locks admits the Figure 3 anomaly; HDD does not";
    source = "Figure 3, §1.2.1";
    tables = [ table ];
    checks =
      [ ("without read locks the schedule is NOT serializable",
         not crippled.serializable);
        ("without read locks t3 reads an inventory level derived from the \
          unseen y", crippled.v_seen_by_t3 = "11");
        ("full 2PL blocks t1 behind t3's read lock",
         full.t1_fate <> "committed" && full.serializable);
        ("HDD admits the same timing without registration and stays \
          serializable",
         hdd.serializable && hdd.t1_fate = "committed"
         && hdd.v_seen_by_t3 = "0") ];
    notes =
      [ "HDD serves t3 the inventory version selected by the activity \
         link A_0^1(I(t3)) — the state before t2's posting — so the \
         dependency t3 -> t2 never forms." ] }
