(* E15 — §7.5: inter-level synchronization traffic.

   The paper's motivating platform is INFOPLEX, a multi-processor
   database computer with one processing level per hierarchy level; the
   proposal is that HDD "reduc[es] inter-level synchronization
   communications".  The simulator is centralized, so messages are
   *modelled*: every operation against a segment controller costs one
   request/reply round trip (2 messages); a read registration costs one
   additional message (the persistent read-lock/read-timestamp write the
   paper prices); every block costs one wake-up message; every restart
   replays its transaction's round trips.

   The model is deliberately simple and stated here so the table can be
   recomputed by hand from E10's counters; the point is the *ratio*
   between protocols, which the paper predicts in HDD's favour because
   cross-level reads carry no registration message at all. *)

module Harness = Hdd_sim.Harness
module Runner = Hdd_sim.Runner
module Workload = Hdd_sim.Workload
module Controller = Hdd_sim.Controller
module Table = Hdd_util.Table

let config =
  { Runner.default_config with Runner.mpl = 8; target_commits = 1500; seed = 11 }

let messages (r : Runner.result) =
  let c = r.Runner.counters in
  let round_trips = 2 * (c.Controller.reads + c.Controller.writes) in
  let registrations = c.Controller.read_registrations in
  let wakeups = c.Controller.blocks in
  round_trips + registrations + wakeups

let run () =
  let wl = Workload.inventory ~ro_weight:0.15 () in
  let rows =
    List.map
      (fun spec -> Runner.run config wl (Harness.make spec wl))
      Harness.all_controlled
  in
  let table =
    Table.create
      ~title:
        "E15 (§7.5): modelled inter-level synchronization messages \
         (inventory, 1500 commits)"
      ~columns:
        [ "protocol"; "round trips"; "registration msgs"; "wakeup msgs";
          "total msgs/txn" ]
  in
  List.iter
    (fun (r : Runner.result) ->
      let c = r.Runner.counters in
      Table.add_row table
        [ r.Runner.controller;
          string_of_int (2 * (c.Controller.reads + c.Controller.writes));
          string_of_int c.Controller.read_registrations;
          string_of_int c.Controller.blocks;
          Table.cell_float
            (float_of_int (messages r) /. float_of_int r.Runner.committed) ])
    rows;
  let per spec =
    let r =
      List.find (fun (r : Runner.result) ->
          r.Runner.controller = Harness.spec_name spec)
        rows
    in
    float_of_int (messages r) /. float_of_int r.Runner.committed
  in
  { Exp_types.id = "E15";
    title = "Inter-level synchronization message model";
    source = "§7.5 (database computer applications)";
    tables = [ table ];
    checks =
      [ ("HDD carries fewer modelled messages per transaction than 2PL, \
          TSO and MVTO",
         per Harness.Hdd < per Harness.S2pl
         && per Harness.Hdd < per Harness.Tso
         && per Harness.Hdd < per Harness.Mvto);
        ("SDD-1's saved registrations are spent on wake-ups",
         per Harness.Sdd1 > per Harness.Hdd) ];
    notes =
      [ "Cost model: 2 messages per operation round trip, +1 per read \
         registration, +1 per block wake-up; restarts replay their round \
         trips (already included in the operation counters)." ] }
