(* E12 — §7.4 efficacy: behaviour under contention.

   Zipf skew on the inventory workload's granule choice is swept from
   uniform to highly skewed; restarts (rejections + deadlocks) and
   throughput per protocol show where each approach degrades.  HDD's
   cross-class reads are immune to contention by construction; its
   restarts track root-segment (intra-class MVTO) conflicts only. *)

module Harness = Hdd_sim.Harness
module Runner = Hdd_sim.Runner
module Workload = Hdd_sim.Workload
module Controller = Hdd_sim.Controller
module Table = Hdd_util.Table

let config =
  { Runner.default_config with Runner.mpl = 10; target_commits = 800; seed = 23 }

let specs = [ Harness.Hdd; Harness.Sdd1; Harness.Mv2pl; Harness.S2pl; Harness.Mvto ]

let run () =
  let alphas = [ 0.0; 0.6; 1.0; 1.4 ] in
  let table =
    Table.create
      ~title:
        "E12: restarts and throughput vs access skew (inventory, 64 items, \
         mpl 10)"
      ~columns:
        ("zipf alpha"
         :: List.concat_map
              (fun s ->
                [ Harness.spec_name s ^ " restarts";
                  Harness.spec_name s ^ " tput" ])
              specs)
  in
  let results =
    List.map
      (fun alpha ->
        let wl = Workload.inventory ~items:64 ~zipf_alpha:alpha () in
        (alpha,
         List.map (fun spec -> Runner.run config wl (Harness.make spec wl)) specs))
      alphas
  in
  List.iter
    (fun (alpha, row) ->
      Table.add_row table
        (Table.cell_float ~decimals:1 alpha
         :: List.concat_map
              (fun (r : Runner.result) ->
                [ string_of_int r.Runner.restarts;
                  Table.cell_float ~decimals:3 r.Runner.throughput ])
              row))
    results;
  let restarts spec alpha =
    let _, row = List.find (fun (a, _) -> a = alpha) results in
    let idx = Option.get (List.find_index (( = ) spec) specs) in
    (List.nth row idx).Runner.restarts
  in
  let tput spec alpha =
    let _, row = List.find (fun (a, _) -> a = alpha) results in
    let idx = Option.get (List.find_index (( = ) spec) specs) in
    (List.nth row idx).Runner.throughput
  in
  { Exp_types.id = "E12";
    title = "Contention sweep";
    source = "§7.4 (efficacy of the HDD approach)";
    tables = [ table ];
    checks =
      [ ("SDD-1 never restarts (it only ever waits for older \
          transactions)", List.for_all (fun a -> restarts Harness.Sdd1 a = 0) alphas);
        ("every protocol keeps positive throughput at maximal skew",
         List.for_all (fun s -> tput s 1.4 > 0.) specs);
        ("skew hurts MVTO restarts at least as much as HDD's",
         restarts Harness.Mvto 1.4 >= restarts Harness.Hdd 1.4) ];
    notes =
      [ "HDD's restarts come from root-segment MVTO rejections: type-2 \
         transactions recomputing the same hot item.";
        "2PL's restarts are deadlock victims." ] }
