(* E8 — Figure 8 / §5.0: read-only transactions whose read set lies on one
   critical path are hosted as a fictitious class below the path's lowest
   class and served through Protocol A alone: no wall needed, no
   registration, no waiting. *)

module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store
module Table = Hdd_util.Table

let gr s k = Granule.make ~segment:s ~key:k

let run () =
  let partition = E03_fig3.partition in
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s = Scheduler.create ~log ~partition ~clock ~store () in
  (* populate: an event, a derived inventory level, a reorder record *)
  let f = Scheduler.begin_update s ~class_id:2 in
  (match Scheduler.write s f (gr 2 0) 7 with
  | Outcome.Granted () -> Scheduler.commit s f
  | _ -> ());
  let d = Scheduler.begin_update s ~class_id:1 in
  (match Scheduler.read s d (gr 2 0) with
  | Outcome.Granted base ->
    ignore (Scheduler.write s d (gr 1 0) (base * 2));
    Scheduler.commit s d
  | _ -> Scheduler.abort s d);
  (* an uncommitted writer in D2 that the hosted reader must not wait for *)
  let straggler = Scheduler.begin_update s ~class_id:2 in
  ignore (Scheduler.write s straggler (gr 2 0) 999);
  (* hosted read-only transaction on the D1-D2 critical path *)
  let ro = Scheduler.begin_read_only_on_path s ~below:1 in
  let table =
    Table.create
      ~title:"E8 (Figure 8): hosted read-only transaction on CP(D1,D2)"
      ~columns:[ "segment"; "threshold"; "outcome"; "value" ]
  in
  let observe seg =
    let threshold =
      match Scheduler.read_threshold s ro ~segment:seg with
      | Some t -> string_of_int t
      | None -> "-"
    in
    match Scheduler.read s ro (gr seg 0) with
    | Outcome.Granted v ->
      Table.add_row table
        [ Printf.sprintf "D%d" seg; threshold; "granted"; string_of_int v ];
      `Granted v
    | Outcome.Blocked _ ->
      Table.add_row table [ Printf.sprintf "D%d" seg; threshold; "BLOCKED"; "-" ];
      `Blocked
    | Outcome.Rejected why ->
      Table.add_row table
        [ Printf.sprintf "D%d" seg; threshold; "rejected: " ^ why; "-" ];
      `Rejected
  in
  let r2 = observe 2 in
  let r1 = observe 1 in
  let r0 = observe 0 in
  Scheduler.commit s ro;
  Scheduler.commit s straggler;
  let m = Scheduler.metrics s in
  { Exp_types.id = "E8";
    title = "Read-only transactions on one critical path";
    source = "Figure 8, §5.0";
    tables = [ table ];
    checks =
      [ ("path reads granted without waiting despite the straggler",
         (match (r1, r2) with `Granted _, `Granted _ -> true | _ -> false));
        ("the straggler's uncommitted write is invisible",
         (match r2 with `Granted v -> v <> 999 | _ -> false));
        ("derived and base values are mutually consistent",
         (match (r1, r2) with
         | `Granted d, `Granted b -> d = b * 2 || d = 0
         | _ -> false));
        ("the off-path segment D0 is rejected", r0 = `Rejected);
        ("no read registration was left anywhere",
         m.Scheduler.read_registrations = 0);
        ("the full run certifies serializable", Certifier.serializable log) ];
    notes =
      [ "The fictitious class sits below T1: thresholds compose I_old \
         starting at class 1 and walking the critical path upward." ] }
