(* Shared record for experiment results; re-exported by {!Experiment}. *)

type outcome = {
  id : string;
  title : string;
  source : string;
  tables : Hdd_util.Table.t list;
  checks : (string * bool) list;
  notes : string list;
}
