(* E14 — §7.1.1: ad-hoc transactions without quiescence.

   The inventory workload is spiked with "correction" transactions that
   amend an event record and the inventory level derived from it — two
   write segments, impossible for any analysed class.  Under HDD they
   join every class they touch and run fully-registered MVTO; the sweep
   shows the price: registrations grow with the ad-hoc share while the
   analysed classes keep their protocol-A savings, and every mix still
   certifies serializable. *)

module Harness = Hdd_sim.Harness
module Runner = Hdd_sim.Runner
module Workload = Hdd_sim.Workload
module Controller = Hdd_sim.Controller
module Table = Hdd_util.Table

let config =
  { Runner.default_config with Runner.mpl = 8; target_commits = 800; seed = 17 }

let run () =
  let fractions = [ 0.0; 0.05; 0.1; 0.2 ] in
  let table =
    Table.create
      ~title:
        "E14: ad-hoc correction transactions mixed into the inventory \
         workload (HDD)"
      ~columns:
        [ "adhoc share"; "regs/txn"; "blocks/txn"; "restarts"; "throughput";
          "serializable" ]
  in
  let rows =
    List.map
      (fun f ->
        let wl = Workload.inventory ~adhoc_weight:f () in
        let r, serializable = Harness.certified_run ~config Harness.Hdd wl in
        let per x = float_of_int x /. float_of_int r.Runner.committed in
        Table.add_row table
          [ Table.cell_pct f;
            Table.cell_float (per r.Runner.counters.Controller.read_registrations);
            Table.cell_float (per r.Runner.counters.Controller.blocks);
            string_of_int r.Runner.restarts;
            Table.cell_float ~decimals:3 r.Runner.throughput;
            (if serializable then "yes" else "NO") ];
        (f, r, serializable))
      fractions
  in
  let regs f =
    let _, (r : Runner.result), _ = List.find (fun (f', _, _) -> f' = f) rows in
    float_of_int r.Runner.counters.Controller.read_registrations
    /. float_of_int r.Runner.committed
  in
  let tput f =
    let _, (r : Runner.result), _ = List.find (fun (f', _, _) -> f' = f) rows in
    r.Runner.throughput
  in
  let restarts f =
    let _, (r : Runner.result), _ = List.find (fun (f', _, _) -> f' = f) rows in
    r.Runner.restarts
  in
  { Exp_types.id = "E14";
    title = "Ad-hoc updates without restructuring";
    source = "§7.1.1 (dynamic restructuring, built as ad-hoc handling)";
    tables = [ table ];
    checks =
      [ ("every mix certifies serializable",
         List.for_all (fun (_, _, s) -> s) rows);
        ("ad-hoc transactions pay with registrations",
         regs 0.2 > regs 0.0);
        ("the barrier's price shows as restarts, growing with the share",
         restarts 0.2 > restarts 0.05 && restarts 0.05 > restarts 0.0);
        ("the system keeps committing at every mix",
         List.for_all (fun f -> tput f > 0.) fractions) ];
    notes =
      [ "An ad-hoc transaction joins every class whose segment it \
         touches, so activity links and time walls account for it; its \
         own accesses run MVTO with registration.";
        "The ad-hoc barrier rejects update transactions whose timestamp \
         falls inside an ad-hoc activity window (they restart after it): \
         historic I_old thresholds and MVTO visibility would otherwise \
         disagree about the ad-hoc writer and admit cycles — this very \
         experiment found those cycles before the barrier existed.";
        "Read-only transactions are unaffected by the barrier; the \
         partition is never restructured, but in-window updaters pay \
         with a restart — the honest cost of §7.1.1 in this design." ] }
