(* E6 — Figure 6 / §4.1: the activity link function traced live.

   A scripted history on the three-class inventory chain; the table shows
   A_0^2(m) composing I_old hop by hop, exactly the figure's walk from a
   class-T0 transaction's initiation to the version threshold in D2. *)

module Activity = Hdd_core.Activity
module Table = Hdd_util.Table

let run () =
  let partition = E03_fig3.partition in
  let registry = Registry.create ~classes:3 () in
  let ctx = Activity.make_ctx partition registry in
  (* scripted activity:
     class 2: t_a I=2 C=9,  t_b I=6 C=15, t_c I=12 active
     class 1: t_d I=4 C=11, t_e I=10 active *)
  let mk id cls i = Txn.make ~id ~kind:(Txn.Update cls) ~init:i in
  let ta = mk 1 2 2 and tb = mk 2 2 6 and tc = mk 3 2 12 in
  let td = mk 4 1 4 and te = mk 5 1 10 in
  List.iter (Registry.register registry) [ ta; td; tb; te; tc ];
  Txn.commit ta ~at:9;
  Txn.commit td ~at:11;
  Txn.commit tb ~at:15;
  let table =
    Table.create
      ~title:
        "E6 (Figure 6): A_0^2(m) = I_2^old(I_1^old(m)) on a live registry"
      ~columns:[ "m"; "I_1^old(m)"; "A_0^2(m) = I_2^old(...)"; "reading" ]
  in
  let checks = ref [] in
  List.iter
    (fun m ->
      let trace = Activity.a_fn_trace ctx ~from_class:0 ~to_class:2 m in
      let hop1 = List.assoc 1 trace and hop2 = List.assoc 2 trace in
      let reading =
        Printf.sprintf
          "a T0 transaction initiated at %d may read D2 versions below %d" m
          hop2
      in
      Table.add_row table
        [ string_of_int m; string_of_int hop1; string_of_int hop2; reading ])
    [ 3; 5; 8; 11; 13; 16 ];
  (* spot-check two figure points *)
  checks :=
    [ ("A_0^2(13): I_1 caps at t_e(10), I_2 caps at t_b(6)",
       Activity.a_fn ctx ~from_class:0 ~to_class:2 13 = 6);
      ("A_0^2(5): I_1 caps at t_d(4), then I_2 caps at t_a(2)",
       Activity.a_fn ctx ~from_class:0 ~to_class:2 5 = 2);
      ("idle prefix is the identity",
       Activity.a_fn ctx ~from_class:0 ~to_class:2 1 = 1) ];
  { Exp_types.id = "E6";
    title = "Activity link function trace";
    source = "Figure 6, §4.1";
    tables = [ table ];
    checks = !checks;
    notes =
      [ "class T2 history: t_a [2,9] committed, t_b [6,15] committed, \
         t_c [12,...] active; class T1: t_d [4,11] committed, t_e [10,...] \
         active" ] }
