(** The experiment registry: one entry per figure or table of the paper
    (see DESIGN.md §4 for the index).  Each experiment regenerates its
    figure as one or more printed tables, and carries machine-checkable
    claims — "the shape the paper reports" — whose verdicts EXPERIMENTS.md
    records. *)

type outcome = {
  id : string;  (** e.g. "E3" *)
  title : string;
  source : string;  (** the paper figure/section reproduced *)
  tables : Hdd_util.Table.t list;
  checks : (string * bool) list;  (** claim, holds? *)
  notes : string list;
}

val all : unit -> (string * (unit -> outcome)) list
(** [(id, run)] pairs in E1..E16 order. *)

val run : string -> outcome
(** @raise Not_found on an unknown id. *)

val run_all : unit -> outcome list

val print : outcome -> unit
(** Render the experiment: header, tables, checks, notes. *)

val passed : outcome -> bool
(** All checks hold. *)
