(* E16 — response time under offered load (open system).

   The evaluation a 1982 systems reviewer would ask for first: Poisson
   arrivals at increasing rates against a fixed server pool, response
   time measured from arrival (queueing included).  Each protocol
   saturates where its concurrency losses eat the pool: SDD-1's
   pipelining saturates earliest; the registering protocols next; HDD
   last — its cross-class reads neither block nor register, so more of
   the pool does useful work. *)

module Harness = Hdd_sim.Harness
module Runner = Hdd_sim.Runner
module Workload = Hdd_sim.Workload
module Table = Hdd_util.Table

let config =
  { Runner.default_config with Runner.mpl = 8; target_commits = 600; seed = 29 }

let specs = [ Harness.Hdd; Harness.Sdd1; Harness.Mv2pl; Harness.S2pl; Harness.Mvto ]

let run () =
  let rates = [ 0.3; 0.7; 1.0; 1.3 ] in
  let table =
    Table.create
      ~title:
        "E16: p95 response time vs offered load (Poisson arrivals, 8 \
         servers, inventory)"
      ~columns:
        ("arrival rate"
         :: List.map (fun s -> Harness.spec_name s ^ " p95") specs)
  in
  let results =
    List.map
      (fun rate ->
        let wl = Workload.inventory () in
        (rate,
         List.map
           (fun spec ->
             Runner.run_open ~arrival_rate:rate config wl
               (Harness.make spec wl))
           specs))
      rates
  in
  List.iter
    (fun (rate, row) ->
      Table.add_row table
        (Table.cell_float ~decimals:1 rate
         :: List.map
              (fun (r : Runner.result) -> Table.cell_float r.Runner.p95_response)
              row))
    results;
  let p95 spec rate =
    let _, row = List.find (fun (r, _) -> r = rate) results in
    let idx = Option.get (List.find_index (( = ) spec) specs) in
    (List.nth row idx).Runner.p95_response
  in
  { Exp_types.id = "E16";
    title = "Open-system load-latency curves";
    source = "§7.4 (efficacy), evaluated the way the era's systems were";
    tables = [ table ];
    checks =
      [ ("latency grows with load under HDD",
         p95 Harness.Hdd 1.3 > p95 Harness.Hdd 0.3);
        ("SDD-1 saturates far below the others",
         p95 Harness.Sdd1 1.0 > 10. *. p95 Harness.Hdd 1.0);
        ("HDD's p95 at high load beats every registering protocol",
         p95 Harness.Hdd 1.3 <= p95 Harness.S2pl 1.3
         && p95 Harness.Hdd 1.3 <= p95 Harness.Mv2pl 1.3
         && p95 Harness.Hdd 1.3 <= p95 Harness.Mvto 1.3) ];
    notes =
      [ "Response time includes queueing; past a protocol's capacity the \
         p95 reflects backlog growth over the measured window rather \
         than a steady state — which is exactly how saturation shows up." ] }
