(* E13 — §5.2: the time-wall release interval.

   The scheduler refreshes Protocol C's wall every k commits.  Small k
   keeps read-only snapshots fresh at the cost of frequent E-vector
   computations; large k serves stale data.  Staleness is measured as
   the logical-time gap between a read-only transaction's initiation and
   the wall anchor it is served. *)

module Runner = Hdd_sim.Runner
module Workload = Hdd_sim.Workload
module Adapters = Hdd_sim.Adapters
module Controller = Hdd_sim.Controller
module Scheduler = Hdd_core.Scheduler
module Timewall = Hdd_core.Timewall
module Table = Hdd_util.Table
module Stats = Hdd_util.Stats

let config =
  { Runner.default_config with Runner.mpl = 8; target_commits = 1200; seed = 3 }

let run () =
  let intervals = [ 1; 4; 16; 64; 256 ] in
  let table =
    Table.create
      ~title:
        "E13: wall release interval vs snapshot staleness (tree workload, \
         1200 commits)"
      ~columns:
        [ "release every k commits"; "walls released"; "mean staleness";
          "p95 staleness"; "throughput" ]
  in
  let measured =
    List.map
      (fun k ->
        let wl = Workload.tree ~branches:3 ~ro_weight:0.3 () in
        let controller, sched, clock =
          Adapters.hdd_detailed ~wall_every_commits:k
            ~partition:wl.Workload.partition ~init:wl.Workload.init ()
        in
        let staleness = Stats.create () in
        (* wrap begin_txn to sample the age of the wall a read-only
           transaction is handed *)
        let wrapped =
          { controller with
            Controller.begin_txn =
              (fun kind ->
                let txn = controller.Controller.begin_txn kind in
                (if kind = Controller.Read_only then
                   match
                     Timewall.latest_before
                       (Scheduler.wall_manager sched)
                       txn.Txn.init
                   with
                   | Some wall ->
                     Stats.add staleness
                       (float_of_int (Time.Clock.now clock - wall.Timewall.m))
                   | None -> ());
                txn) }
        in
        let r = Runner.run config wl wrapped in
        (k, Timewall.release_count (Scheduler.wall_manager sched),
         Stats.mean staleness,
         (if Stats.count staleness > 0 then Stats.percentile staleness 95.
          else nan),
         r.Runner.throughput))
      intervals
  in
  List.iter
    (fun (k, walls, mean, p95, tput) ->
      Table.add_row table
        [ string_of_int k; string_of_int walls; Table.cell_float mean;
          Table.cell_float p95; Table.cell_float ~decimals:3 tput ])
    measured;
  let mean_of k =
    let _, _, m, _, _ = List.find (fun (k', _, _, _, _) -> k' = k) measured in
    m
  in
  let walls_of k =
    let _, w, _, _, _ = List.find (fun (k', _, _, _, _) -> k' = k) measured in
    w
  in
  { Exp_types.id = "E13";
    title = "Time-wall release interval sweep";
    source = "§5.2 (periodic wall releases)";
    tables = [ table ];
    checks =
      [ ("staleness grows with the release interval",
         mean_of 256 > mean_of 1);
        ("frequent releases really release more walls",
         walls_of 1 > walls_of 256);
        ("staleness was observed on every setting",
         List.for_all (fun (_, _, m, _, _) -> not (Float.is_nan m)) measured) ];
    notes =
      [ "Staleness = logical clock now at the RO begin minus the anchor m \
         of the wall it was served; logical ticks correspond to \
         begin/commit events." ] }
