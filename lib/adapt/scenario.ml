module Spec = Hdd_core.Spec
module Sched = Hdd_core.Scheduler
module T = Hdd_obs.Trace

type golden = { g_name : string; g_what : string }

let hotspot_migration =
  { g_name = "hotspot_migration";
    g_what =
      "one class takes over the window; detector flags it, advisor picks a \
       migration, executor bumps the epoch live" }

let class_split =
  { g_name = "class_split";
    g_what =
      "the hot segment is split at the advisor's pivot into a fresh child \
       class; state carried into the fresh store" }

let goldens = [ hotspot_migration; class_split ]

let chain_spec depth =
  Spec.make
    ~segments:(List.init depth (fun i -> Printf.sprintf "D%d" i))
    ~types:
      (List.init depth (fun i ->
           Spec.txn_type
             ~name:(Printf.sprintf "t%d" i)
             ~writes:[ i ]
             ~reads:(if i < depth - 1 then [ i; i + 1 ] else [ i ])))

let g segment key = Granule.make ~segment ~key

(* One update transaction: write [own] granules in the root segment,
   read one cross-class granule when the chain continues. *)
let update x ~cls ~key ~v ~cross =
  let s = Exec.scheduler x in
  let t = Sched.begin_update s ~class_id:cls in
  ignore (Sched.read s t (g cls key));
  ignore (Sched.write s t (g cls key) v);
  if cross then ignore (Sched.read s t (g (cls + 1) key));
  Sched.commit s t

let detector_config =
  { Drift.default_config with window = 64; min_commits = 16 }

(* The deterministic drift loop shared by both scenarios: a skewed
   phase makes class 1 hot, the detector reads the trace so far, the
   advisor ranks repairs, and [pick] selects which one the executor
   applies before a balanced closing phase. *)
let run_scenario ~pick =
  let depth = 4 in
  let trace = T.create ~capacity:8192 () in
  let x = Exec.create ~trace ~spec:(chain_spec depth) ~init:(fun _ -> 0) () in
  (* skewed phase: class 1 dominates *)
  for i = 1 to 24 do
    update x ~cls:1 ~key:(i mod 8) ~v:(100 + i) ~cross:true;
    if i mod 6 = 0 then update x ~cls:0 ~key:(i mod 8) ~v:i ~cross:true
  done;
  let d = Drift.create ~config:detector_config ~spec:(Exec.spec x) () in
  Drift.observe d (T.records trace);
  let repairs =
    Advise.propose ~workers:2 ~keys_per_segment:8 d
  in
  (match pick repairs with
  | None -> failwith "scenario: advisor proposed no applicable repair"
  | Some (r : Advise.repair) ->
    (match Exec.apply x r.Advise.move with
    | Ok () -> ()
    | Error e -> failwith ("scenario: repair failed: " ^ e)));
  (* balanced closing phase against the repaired decomposition *)
  let classes = Spec.segment_count (Exec.spec x) in
  for i = 1 to 8 do
    let cls = i mod classes in
    let cross =
      cls + 1 < classes
      && Hdd_core.Partition.may_read (Exec.partition x) ~class_id:cls
           ~segment:(cls + 1)
    in
    update x ~cls ~key:(i mod 8) ~v:(200 + i) ~cross
  done;
  T.records trace

let golden_records gl =
  if gl.g_name = hotspot_migration.g_name then
    run_scenario ~pick:(fun repairs ->
        List.find_opt
          (fun r ->
            match r.Advise.move with Advise.Migrate _ -> true | _ -> false)
          repairs)
  else
    run_scenario ~pick:(fun repairs ->
        List.find_opt
          (fun r ->
            match r.Advise.move with Advise.Split _ -> true | _ -> false)
          repairs)
