(** The live-repartition benchmark ([hdd_cli bench --adapt]).

    Measures what a decomposition repair costs while the multicore
    engine is serving traffic, three ways on the same chain hierarchy,
    worker count, mix and seed:

    - {b steady}: one uninterrupted {!Hdd_runtime.Engine.run_timed} —
      the ceiling;
    - {b live}: the same run with the coordinator applying a whole-map
      ownership rotation behind a park barrier every
      [rotate_every_s] — every class changes owner at every barrier,
      the worst-case migration;
    - {b stop-the-world}: the pre-adaptive alternative — tear the
      engine down and rebuild it from scratch at every would-be
      barrier, measured over the whole wall-clock including the
      rebuilds.

    The headline is [retention_live] = live / steady throughput:
    {!gates} holds it at or above {!retention_floor}, and CI
    additionally gates the committed [bench/BENCH_adapt.json]
    baseline's structure. *)

type result = {
  a_workers : int;
  a_seconds : float;
  a_rotate_every_s : float;
  a_depth : int;
  a_seed : int;
  a_steady_txn_per_s : float;
  a_steady_committed : int;
  a_live_txn_per_s : float;
  a_live_committed : int;
  a_live_repartitions : int;
  a_stw_txn_per_s : float;
  a_stw_committed : int;
  a_stw_restarts : int;
  a_retention_live : float;  (** live / steady *)
  a_retention_stw : float;  (** stop-the-world / steady *)
}

val retention_floor : float
(** 0.70: a live repartition may cost at most 30% of steady-state
    throughput at the benchmark's rotation cadence. *)

val run :
  ?workers:int ->
  ?seconds:float ->
  ?rotate_every_s:float ->
  ?depth:int ->
  ?seed:int ->
  unit ->
  result
(** Defaults: workers 4 (capped at the recommended domain count),
    1.0 s per mode, a rotation every 0.125 s, chain depth 8, seed 42. *)

val gates : result -> string list
(** Empty when the live run repartitioned at least once, committed
    work in every mode, and [retention_live >= retention_floor]. *)

val to_json : result -> Hdd_benchkit.Jsonlite.t
val pp : Format.formatter -> result -> unit
