module Spec = Hdd_core.Spec
module P = Hdd_core.Partition
module T = Hdd_obs.Trace

type config = {
  window : int;
  hot_share : float;
  min_commits : int;
  adhoc_promote : int;
}

let default_config =
  { window = 256; hot_share = 0.5; min_commits = 32; adhoc_promote = 3 }

type signal =
  | Hotspot of { class_id : int; share : float; commits : int }
  | Tst_break of {
      edge : int * int;
      wsegs : int list;
      rsegs : int list;
      error : P.error;
    }

let pp_signal ppf = function
  | Hotspot { class_id; share; commits } ->
    Format.fprintf ppf "hotspot: class %d holds %.0f%% of %d commits"
      class_id (100. *. share) commits
  | Tst_break { edge = a, b; wsegs; rsegs; error } ->
    Format.fprintf ppf
      "tst-break at edge (%d, %d): footprint w=[%s] r=[%s] — %s" a b
      (String.concat ";" (List.map string_of_int wsegs))
      (String.concat ";" (List.map string_of_int rsegs))
      (P.error_to_string error)

type t = {
  cfg : config;
  spec : Spec.t;
  (* active transactions: id -> class (update members only) *)
  active : (int, int) Hashtbl.t;
  (* active ad-hoc transactions: id -> footprint *)
  active_adhoc : (int, int list * int list) Hashtbl.t;
  (* sliding window of committed classes, oldest first *)
  window : int Queue.t;
  counts : int array;  (* commits per class currently in the window *)
  (* recurring ad-hoc footprints: (wsegs, rsegs) -> sightings *)
  footprints : (int list * int list, int) Hashtbl.t;
}

let create ?(config = default_config) ~spec () =
  { cfg = config;
    spec;
    active = Hashtbl.create 64;
    active_adhoc = Hashtbl.create 8;
    window = Queue.create ();
    counts = Array.make (Spec.segment_count spec) 0;
    footprints = Hashtbl.create 8 }

let slide t class_id =
  Queue.push class_id t.window;
  t.counts.(class_id) <- t.counts.(class_id) + 1;
  if Queue.length t.window > t.cfg.window then begin
    let old = Queue.pop t.window in
    t.counts.(old) <- t.counts.(old) - 1
  end

let feed t (r : T.record) =
  match r.T.ev with
  | T.Begin { txn; kind = T.Update c; _ } -> Hashtbl.replace t.active txn c
  | T.Begin { txn; kind = T.Adhoc { wsegs; rsegs }; _ } ->
    Hashtbl.replace t.active_adhoc txn (wsegs, rsegs)
  | T.Begin _ -> ()
  | T.Commit { txn; _ } ->
    (match Hashtbl.find_opt t.active txn with
    | Some c ->
      Hashtbl.remove t.active txn;
      slide t c
    | None ->
      (match Hashtbl.find_opt t.active_adhoc txn with
      | Some fp ->
        Hashtbl.remove t.active_adhoc txn;
        let n = Option.value ~default:0 (Hashtbl.find_opt t.footprints fp) in
        Hashtbl.replace t.footprints fp (n + 1)
      | None -> ()))
  | T.Abort { txn; _ } ->
    Hashtbl.remove t.active txn;
    Hashtbl.remove t.active_adhoc txn
  | _ -> ()

let observe t records = List.iter (feed t) records

let window_commits t = Queue.length t.window

let commits_by_class t =
  Array.to_list (Array.mapi (fun c n -> (c, n)) t.counts)
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let promoted t =
  Hashtbl.fold
    (fun fp n acc -> if n >= t.cfg.adhoc_promote then fp :: acc else acc)
    t.footprints []
  |> List.sort compare

let observed_spec t =
  let extra =
    List.mapi
      (fun i (wsegs, rsegs) ->
        Spec.txn_type
          ~name:(Printf.sprintf "adhoc%d" i)
          ~writes:wsegs ~reads:rsegs)
      (promoted t)
  in
  Spec.make
    ~segments:(Array.to_list t.spec.Spec.segment_names)
    ~types:(Array.to_list t.spec.Spec.types @ extra)

let dhg t = P.dhg_of_spec (observed_spec t)

(* The witness edge of a build failure, for the shrinker and the
   advisor: Not_semi_tree carries it directly; a cycle's first two
   nodes are an arc on the cycle; a multi-write type's first two write
   segments are the arc that cannot exist in any semi-tree. *)
let witness_edge = function
  | P.Not_semi_tree (a, b) -> (a, b)
  | P.Cyclic (a :: b :: _) -> (a, b)
  | P.Cyclic _ -> (-1, -1)
  | P.Multiple_write_segments (_, a :: b :: _) -> (a, b)
  | P.Multiple_write_segments _ -> (-1, -1)

let signals t =
  let hot =
    let total = Queue.length t.window in
    if total < t.cfg.min_commits then []
    else begin
      match commits_by_class t with
      | (c, n) :: _
        when float_of_int n /. float_of_int total >= t.cfg.hot_share ->
        [ Hotspot
            { class_id = c;
              share = float_of_int n /. float_of_int total;
              commits = total } ]
      | _ -> []
    end
  in
  let breaks =
    List.filter_map
      (fun (wsegs, rsegs) ->
        let candidate =
          Spec.make
            ~segments:(Array.to_list t.spec.Spec.segment_names)
            ~types:
              (Array.to_list t.spec.Spec.types
              @ [ Spec.txn_type ~name:"adhoc?" ~writes:wsegs ~reads:rsegs ])
        in
        match P.build candidate with
        | Ok _ -> None
        | Error e ->
          Some (Tst_break { edge = witness_edge e; wsegs; rsegs; error = e }))
      (promoted t)
  in
  hot @ breaks
