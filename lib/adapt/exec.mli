(** The repair executor, serial level: an adaptive HDD engine whose
    decomposition can be swapped while it lives (DESIGN.md §17).

    The executor owns the full serial stack — {!Hdd_core.Spec},
    {!Hdd_core.Partition}, {!Hdd_core.Scheduler}, {!Hdd_mvstore.Store} —
    plus one {!Time.Clock} that is {e carried across every swap}, so
    timestamps keep increasing monotonically through a repartition and
    every post-swap version sits above every pre-swap one.

    {!apply} installs a repair atomically at a quiescent point (no
    transaction may be active — the monitor's Partition-epoch invariant
    checks this on replay): it first anchors a time wall (the barrier
    the multicore engine parks behind; serially the release attempt is
    the observable trace of the same barrier), then for a spec-level
    move builds the new partition, carries the latest committed value of
    every granule into the fresh store's bootstrap (colliding merged
    granules resolve to the newest version, ties to the lower original
    segment), swaps in a new scheduler under the carried clock, bumps
    the published epoch, and emits a
    {!Hdd_obs.Trace.event.Repartition} record with [fresh_store = true]
    so monitor replays reset their shadow state.  A [Migrate] changes
    no spec: it bumps the epoch and emits the record with
    [fresh_store = false] — worker ownership is the multicore engine's
    business ({!Hdd_runtime.Engine.run_script}'s [plan]).

    Granule addresses survive repairs through {!locate}: callers keep
    using original addresses; the executor composes the remapping
    (merge collapses segments, split moves keys at or above the pivot
    into the child). *)

type t

val create :
  ?trace:Hdd_obs.Trace.t ->
  ?wall_every_commits:int ->
  spec:Hdd_core.Spec.t ->
  init:(Granule.t -> int) ->
  unit ->
  t
(** @raise Invalid_argument when the spec is not TST-hierarchical. *)

val spec : t -> Hdd_core.Spec.t
val partition : t -> Hdd_core.Partition.t
val scheduler : t -> int Hdd_core.Scheduler.t
(** The current scheduler — invalidated by the next {!apply}; fetch it
    again after every repair. *)

val epoch : t -> int
(** Published repartition epoch: 0 at creation, +1 per {!apply}. *)

val locate : t -> Granule.t -> Granule.t
(** Current address of an original granule, through every repair so
    far. *)

val value : t -> Granule.t -> int
(** Latest committed value of an original granule (bootstrap/carried
    value when never written since the last fresh store). *)

val apply : t -> Advise.move -> (unit, string) result
(** Install one repair.  [Error] (and no state change) when the
    post-move spec fails {!Hdd_core.Partition.build}, a split pivot is
    out of a key range already split, or a merge references an invalid
    pair.  Requires quiescence: no active transactions.
    @raise Invalid_argument when transactions are still active. *)
