type config = {
  window_min : int;
  hot_share : float;
  hold : int;
  cooldown_s : float;
  max_moves : int;
}

let default_config =
  { window_min = 64;
    hot_share = 0.5;
    hold = 2;
    cooldown_s = 0.05;
    max_moves = 64 }

type t = {
  cfg : config;
  workers : int;
  mutable owner_map : int array;
  mutable last : int array;  (* cumulative counts at the last window cut *)
  mutable streak_class : int;  (* hot class of the current streak, -1 none *)
  mutable streak : int;  (* consecutive windows flagging [streak_class] *)
  mutable last_move_at : float;
  mutable moves : int;
  mutable windows : int;
}

let create ?(config = default_config) ~workers ~owner_map () =
  if workers <= 0 then invalid_arg "Control: workers must be > 0";
  { cfg = config;
    workers;
    owner_map = Array.copy owner_map;
    last = [||];
    streak_class = -1;
    streak = 0;
    last_move_at = neg_infinity;
    moves = 0;
    windows = 0 }

let moves t = t.moves
let windows t = t.windows
let owner_map t = Array.copy t.owner_map

(* One observation of the cumulative per-class commit counters.  The
   fold works in windows: deltas accumulate until [window_min] commits
   have happened since the last cut, then the window is judged.  A
   class is hot when it carries at least [hot_share] of the window;
   only after [hold] consecutive windows flag the {e same} class (the
   hysteresis) and [cooldown_s] has passed since the last move (the
   rate limit) does the controller emit a repair: the advisor's
   top-ranked move for a hotspot, migrating the hot class to the
   least-loaded other worker. *)
let decide t counts =
  t.windows <- t.windows + 1;
  if Array.length t.last <> Array.length counts then begin
    (* first observation (or segment count changed): cut here *)
    t.last <- Array.copy counts;
    None
  end
  else begin
    let n = Array.length counts in
    let total = ref 0 in
    for c = 0 to n - 1 do
      total := !total + counts.(c) - t.last.(c)
    done;
    if !total < t.cfg.window_min then None
    else begin
      let hot = ref 0 and hot_delta = ref min_int in
      let load = Array.make t.workers 0 in
      for c = 0 to n - 1 do
        let d = counts.(c) - t.last.(c) in
        if d > !hot_delta then begin
          hot := c;
          hot_delta := d
        end;
        let o = t.owner_map.(c) in
        if o >= 0 && o < t.workers then load.(o) <- load.(o) + d
      done;
      t.last <- Array.copy counts;
      let share = float_of_int !hot_delta /. float_of_int !total in
      if share < t.cfg.hot_share || t.workers < 2 then begin
        t.streak_class <- -1;
        t.streak <- 0;
        None
      end
      else begin
        if !hot = t.streak_class then t.streak <- t.streak + 1
        else begin
          t.streak_class <- !hot;
          t.streak <- 1
        end;
        let now = Unix.gettimeofday () in
        if
          t.streak < t.cfg.hold
          || t.moves >= t.cfg.max_moves
          || now -. t.last_move_at < t.cfg.cooldown_s
        then None
        else begin
          (* least-loaded worker other than the hot class's owner *)
          let owner = t.owner_map.(!hot) in
          let dest = ref (-1) in
          for w = 0 to t.workers - 1 do
            if w <> owner && (!dest < 0 || load.(w) < load.(!dest)) then
              dest := w
          done;
          match
            Advise.target_map ~owner_map:t.owner_map
              (Advise.Migrate { class_id = !hot; to_worker = !dest })
          with
          | None -> None
          | Some target ->
            t.owner_map <- Array.copy target;
            t.last_move_at <- now;
            t.moves <- t.moves + 1;
            t.streak <- 0;
            t.streak_class <- -1;
            Some target
        end
      end
    end
  end

let hook t = decide t
