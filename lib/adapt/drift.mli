(** The drift detector: folds the live {!Hdd_obs.Trace} event stream
    into a rolling picture of the *dynamic* hierarchy — what the
    workload actually does, as opposed to what the transaction analysis
    declared — and raises signals when the decomposition has drifted
    (DESIGN.md §17).

    Two kinds of drift matter to the paper's technique:

    - {b contention concentration}: the share of recent commits rooted
      in one class exceeds [hot_share] — the decomposition still holds,
      but one worker owns most of the work and the parallelism the
      hierarchy promised is gone.  Repair: migrate classes between
      workers, or split the hot segment (§7.2.2's granularity choice
      revisited online).
    - {b TST-ness breaks}: recurring ad-hoc update transactions
      (§7.1.1) whose footprints, admitted into the analysis as real
      transaction types, would make the data hierarchy graph stop being
      a transitive semi-tree.  Occasional ad-hoc traffic is what the
      barrier rule is for; a *recurring* footprint ([adhoc_promote]
      sightings in the window) is the paper's §7.2.1 restructuring
      trigger.  Repair: merge the offending segments
      ({!Hdd_core.Legalize}'s transformation, applied online).

    The detector is a pure fold: feed it records (live via
    {!Hdd_obs.Trace.subscribe}, or offline over a merged trace) and ask
    for {!signals} at any point.  It never mutates the engine. *)

type config = {
  window : int;  (** sliding window size, in committed transactions *)
  hot_share : float;
      (** commit share above which a class is flagged hot *)
  min_commits : int;
      (** no hotspot verdicts before the window holds this many *)
  adhoc_promote : int;
      (** sightings before an ad-hoc footprint joins the observed
          analysis *)
}

val default_config : config
(** window 256, hot_share 0.5, min_commits 32, adhoc_promote 3. *)

type signal =
  | Hotspot of { class_id : int; share : float; commits : int }
      (** [share] of the window's commits root in [class_id] *)
  | Tst_break of {
      edge : int * int;
          (** the DHG edge witnessing the violation: the segment pair
              joined by two distinct undirected critical paths (or the
              first two nodes of a witness cycle) *)
      wsegs : int list;
      rsegs : int list;  (** the promoted footprint that broke it *)
      error : Hdd_core.Partition.error;
    }

val pp_signal : Format.formatter -> signal -> unit

type t

val create : ?config:config -> spec:Hdd_core.Spec.t -> unit -> t

val feed : t -> Hdd_obs.Trace.record -> unit
(** Fold one record: [Begin] records classify the transaction, [Commit]
    records advance the window.  Everything else is ignored. *)

val observe : t -> Hdd_obs.Trace.record list -> unit
(** [feed] a whole merged trace, in order. *)

val window_commits : t -> int
(** Committed transactions currently in the window. *)

val commits_by_class : t -> (int * int) list
(** Per-class commit counts in the window, descending. *)

val observed_spec : t -> Hdd_core.Spec.t
(** The declared spec plus one transaction type per promoted ad-hoc
    footprint — the spec whose DHG is the rolling dynamic hierarchy. *)

val dhg : t -> Hdd_graph.Digraph.t
(** The rolling dynamic-hierarchy graph: {!Hdd_core.Partition.dhg_of_spec}
    of {!observed_spec}. *)

val witness_edge : Hdd_core.Partition.error -> int * int
(** The DHG edge witnessing a build failure: [Not_semi_tree]'s pair,
    the first arc of a [Cyclic] witness, or the first two write
    segments of a [Multiple_write_segments] type.  [(-1, -1)] when the
    error carries no usable pair.  Used by the advisor's reasons and by
    the mutation property's shrinker output. *)

val signals : t -> signal list
(** Current drift verdicts: at most one [Hotspot] (the hottest class
    over threshold) and one [Tst_break] per promoted footprint the
    declared hierarchy cannot absorb. *)
