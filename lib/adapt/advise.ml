module Spec = Hdd_core.Spec
module P = Hdd_core.Partition
module L = Hdd_core.Legalize

type move =
  | Migrate of { class_id : int; to_worker : int }
  | Split of { segment : int; pivot : int }
  | Merge of { a : int; b : int }

let pp_move ppf = function
  | Migrate { class_id; to_worker } ->
    Format.fprintf ppf "migrate class %d -> worker %d" class_id to_worker
  | Split { segment; pivot } ->
    Format.fprintf ppf "split segment %d at key %d" segment pivot
  | Merge { a; b } -> Format.fprintf ppf "merge segment %d into %d" b a

type repair = {
  move : move;
  spec : Spec.t option;
  cost : float;
  benefit : float;
  why : string;
}

let score r = r.benefit -. r.cost

let pp_repair ppf r =
  Format.fprintf ppf "%a (benefit %.2f, cost %.2f): %s" pp_move r.move
    r.benefit r.cost r.why

(* --- spec transforms --- *)

let split_spec (spec : Spec.t) ~segment =
  let n = Spec.segment_count spec in
  if segment < 0 || segment >= n then
    invalid_arg (Printf.sprintf "Advise.split_spec: segment %d of %d" segment n);
  (* re-splitting a segment must not collide with its earlier child *)
  let taken name = Array.exists (String.equal name) spec.Spec.segment_names in
  let child_name =
    let rec fresh name = if taken name then fresh (name ^ "+") else name in
    fresh (spec.Spec.segment_names.(segment) ^ "+")
  in
  let child = n in
  Spec.make
    ~segments:(Array.to_list spec.Spec.segment_names @ [ child_name ])
    ~types:
      (Array.to_list spec.Spec.types
      @ [ Spec.txn_type ~name:("t" ^ child_name) ~writes:[ child ]
            ~reads:[ child; segment ] ])

let merge_spec (spec : Spec.t) ~a ~b =
  let n = Spec.segment_count spec in
  if a = b || a < 0 || b < 0 || a >= n || b >= n then
    invalid_arg (Printf.sprintf "Advise.merge_spec: (%d, %d) of %d" a b n);
  (* old id -> new id: [b] folds into [a], ids above [b] shift down *)
  let map =
    Array.init n (fun i ->
        let i = if i = b then a else i in
        if i > b then i - 1 else i)
  in
  let remap l = List.sort_uniq compare (List.map (fun i -> map.(i)) l) in
  let segments =
    Array.to_list spec.Spec.segment_names
    |> List.filteri (fun i _ -> i <> b)
  in
  let types =
    Array.to_list spec.Spec.types
    |> List.map (fun (ty : Spec.txn_type) ->
           Spec.txn_type ~name:ty.Spec.type_name ~writes:(remap ty.Spec.writes)
             ~reads:(remap ty.Spec.reads))
  in
  (Spec.make ~segments ~types, map)

let merge_candidates spec =
  let n = Spec.segment_count spec in
  let ok = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let merged, _ = merge_spec spec ~a ~b in
      match P.build merged with
      | Ok _ -> ok := (a, b) :: !ok
      | Error _ -> ()
    done
  done;
  List.rev !ok

(* --- the advisor --- *)

let least_loaded ~owner_map ~workers ~excluding =
  let load = Array.make workers 0 in
  Array.iter (fun o -> if o >= 0 && o < workers then load.(o) <- load.(o) + 1)
    owner_map;
  let best = ref (-1) in
  for w = workers - 1 downto 0 do
    if w <> excluding && (!best < 0 || load.(w) <= load.(!best)) then best := w
  done;
  !best

let target_map ~owner_map = function
  | Migrate { class_id; to_worker } ->
    if class_id < 0 || class_id >= Array.length owner_map then None
    else begin
      let m = Array.copy owner_map in
      m.(class_id) <- to_worker;
      Some m
    end
  | Split _ | Merge _ -> None

let propose ?(workers = 2) ?owner_map ?(keys_per_segment = 16) drift =
  let spec = Drift.observed_spec drift in
  let nseg = Spec.segment_count spec in
  let owner_map =
    match owner_map with
    | Some m -> m
    | None -> Hdd_runtime.Engine.default_owner_map ~segments:nseg ~workers
  in
  let of_signal = function
    | Drift.Hotspot { class_id; share; _ } ->
      let migrate =
        if workers <= 1 then []
        else begin
          let from = owner_map.(class_id) in
          let dst = least_loaded ~owner_map ~workers ~excluding:from in
          if dst < 0 then []
          else
            [ { move = Migrate { class_id; to_worker = dst };
                spec = None;
                cost = 0.1;
                benefit = share;
                why =
                  Printf.sprintf
                    "spread the hot class off worker %d (%.0f%% of commits)"
                    from (100. *. share) } ]
        end
      in
      let split =
        let candidate = split_spec spec ~segment:class_id in
        match P.build candidate with
        | Error _ -> []
        | Ok _ ->
          [ { move =
                Split { segment = class_id; pivot = keys_per_segment / 2 };
              spec = Some candidate;
              cost = 1.0;
              benefit = share /. 2.;
              why = "halve the hot segment's key range" } ]
      in
      migrate @ split
    | Drift.Tst_break { edge; error; _ } ->
      let legal = L.legalize spec in
      (match legal.L.merges with
      | [] -> []
      | (a, b) :: _ ->
        [ { move = Merge { a; b };
            spec = Some legal.L.spec;
            cost = float_of_int (List.length legal.L.merges);
            benefit = 1.5;
            why =
              Printf.sprintf
                "restore TST-ness broken at edge (%d, %d): %s" (fst edge)
                (snd edge)
                (P.error_to_string error) } ])
  in
  Drift.signals drift
  |> List.concat_map of_signal
  |> List.sort (fun x y -> compare (score y) (score x))
