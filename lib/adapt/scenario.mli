(** Deterministic drift scenarios — the end-to-end
    detect → advise → execute loop run serially with a trace attached,
    frozen as byte-stable goldens under [test/golden/adapt_*.trace].

    Each scenario is fully deterministic (serial executor, fixed
    workload, no randomness), so two runs produce identical record
    lists and the golden files pin the whole adaptive pipeline: what
    the detector flags, which repair the advisor ranks first, and the
    exact trace the executor emits through the swap. *)

type golden = {
  g_name : string;
  g_what : string;  (** one-line description for reports *)
}

val hotspot_migration : golden
(** A chain hierarchy where one class takes over the commit window: the
    detector flags the hotspot, the advisor's best repair is a
    [Migrate], and the executor applies it (epoch bump,
    [fresh_store = false]). *)

val class_split : golden
(** The same drift pushed further: the advisor's split repair is
    applied instead, carving the hot segment's upper key range into a
    fresh child class ([fresh_store = true], state carried), after
    which traffic runs against the refined decomposition. *)

val goldens : golden list

val golden_records : golden -> Hdd_obs.Trace.record list
(** Re-run the scenario and return its merged trace — what the golden
    files freeze, and what the monitor replays in the test suite. *)
