(** The closed-loop placement controller (DESIGN.md §18): the piece
    that closes the observe-advise-apply loop PR 8 left open.  The
    engine's coordinator feeds it a racy snapshot of cumulative
    per-class commit counts once per poll; the controller folds them
    into commit-count windows, flags a hotspot exactly like
    {!Drift.signal.Hotspot} (one class carrying at least [hot_share] of
    a window), and — after [hold] consecutive windows agree on the same
    class (hysteresis) and at most once per [cooldown_s] (rate limit) —
    returns the advisor's top-ranked live repair for it:
    {!Advise.move.Migrate} of the hot class to the least-loaded other
    worker, materialized through {!Advise.target_map}.  The engine
    installs whatever map the controller returns behind a park barrier
    (kind ["auto"]), so the differential oracle cannot distinguish a
    controlled run from a static one — the auto-repartition equivalence
    property in the test suite.

    The controller tracks the owner map it has asked for; it must be
    the only source of repartitions in a controlled run (do not combine
    with [rotate_every_s]). *)

type config = {
  window_min : int;  (** commits per judged window *)
  hot_share : float;  (** window share above which a class is hot *)
  hold : int;
      (** consecutive windows that must flag the same class before a
          move — the hysteresis that keeps a transient spike from
          triggering a migration *)
  cooldown_s : float;  (** minimum wall-clock seconds between moves *)
  max_moves : int;  (** hard cap on moves per run *)
}

val default_config : config
(** window 64, hot_share 0.5, hold 2, cooldown 50ms, max 64 moves. *)

type t

val create : ?config:config -> workers:int -> owner_map:int array -> unit -> t
(** [owner_map] is the engine's initial class-to-worker assignment
    (normally {!Hdd_runtime.Engine.default_owner_map}).
    @raise Invalid_argument when [workers <= 0]. *)

val decide : t -> int array -> int array option
(** One observation of the cumulative per-class commit counters;
    [Some target] asks the engine for a live repartition to [target].
    Exactly the signature of {!Hdd_runtime.Engine.run_timed}'s
    [control] argument. *)

val hook : t -> int array -> int array option
(** [decide], partially applied — pass [hook t] as [?control]. *)

val moves : t -> int
(** Migrations requested so far. *)

val windows : t -> int
(** Observations folded so far (coordinator polls, not judged windows). *)

val owner_map : t -> int array
(** The owner map after every move requested so far (a copy). *)
