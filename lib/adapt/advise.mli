(** The repair advisor: turns {!Drift} signals into concrete,
    pre-validated decomposition repairs, scored by a cost model
    (DESIGN.md §17).

    Three moves exist, mirroring the two levels a repair can act on:

    - [Migrate] re-assigns a class to another worker domain.  Pure
      ownership change: the partition object is untouched, so the
      multicore engine applies it live behind a park barrier
      ({!Hdd_runtime.Engine.run_script}'s [plan]) and the differential
      oracle must not be able to tell.
    - [Split] carves the keys at or above [pivot] out of a segment into
      a fresh child segment with its own (new) transaction class — the
      granularity refinement of §7.2.2, online.  The child's class
      writes only the child and reads only child and parent, so the
      dynamic hierarchy graph grows a leaf and TST-ness is preserved by
      construction.
    - [Merge] collapses segment [b] into segment [a] — §7.2.1's
      legalization step, the repair for a {!Drift.signal.Tst_break}.

    Every spec-level move the advisor emits has already passed
    {!Hdd_core.Partition.build}: an advisor that can propose an illegal
    decomposition is a bug, and the mutation property in the test suite
    holds it to that. *)

type move =
  | Migrate of { class_id : int; to_worker : int }
  | Split of { segment : int; pivot : int }
  | Merge of { a : int; b : int }

val pp_move : Format.formatter -> move -> unit

type repair = {
  move : move;
  spec : Hdd_core.Spec.t option;
      (** the post-repair decomposition; [None] for [Migrate], which
          does not change the spec *)
  cost : float;  (** state moved / granularity lost, abstract units *)
  benefit : float;  (** contention spread / legality restored *)
  why : string;
}

val score : repair -> float
(** [benefit -. cost]: the advisor sorts descending by this. *)

val pp_repair : Format.formatter -> repair -> unit

(** {1 Spec transforms} *)

val split_spec : Hdd_core.Spec.t -> segment:int -> Hdd_core.Spec.t
(** Append segment ["<name>+"] as a child of [segment], plus a type
    ["t<name>+"] writing the child and reading child and parent.  The
    result always validates when the input does (leaf extension).
    @raise Invalid_argument on an out-of-range segment. *)

val merge_spec : Hdd_core.Spec.t -> a:int -> b:int -> Hdd_core.Spec.t * int array
(** Collapse segment [b] into [a]: every type's segment references are
    remapped, [b]'s name disappears, indices above [b] shift down.
    Returns the merged spec and the segment map (old id -> new id).
    The result does {e not} always validate — merging non-adjacent
    segments of a chain bends it into a cycle — which is why
    {!merge_candidates} filters through {!Hdd_core.Partition.build}.
    @raise Invalid_argument when [a = b] or out of range. *)

val merge_candidates : Hdd_core.Spec.t -> (int * int) list
(** The segment pairs whose merge validates as TST-hierarchical, i.e.
    the legal [Merge] moves from this spec. *)

(** {1 The advisor} *)

val propose :
  ?workers:int ->
  ?owner_map:int array ->
  ?keys_per_segment:int ->
  Drift.t ->
  repair list
(** Repairs for the detector's current {!Drift.signals}, best first:

    - a [Hotspot] yields a [Migrate] of the hot class to the
      least-loaded other worker (benefit = the hot share, cost ~ one
      class's state) and a [Split] of the hot segment at
      [keys_per_segment / 2] (benefit = half the hot share, cost ~ a
      fresh segment plus moved keys);
    - a [Tst_break] yields the [Merge] restoring legality: the first
      merge {!Hdd_core.Legalize} would perform on the observed spec
      (benefit = 1, cost = granularity lost, i.e. merges needed).

    [owner_map] (default {!Hdd_runtime.Engine.default_owner_map} over
    [workers], default 2) tells the advisor who owns what; [Migrate]
    proposals are omitted when only one worker exists. *)

val target_map :
  owner_map:int array -> move -> int array option
(** The engine owner map after a [Migrate] — [None] for spec-level
    moves, which the engine cannot apply live. *)
