module Spec = Hdd_core.Spec
module P = Hdd_core.Partition
module Sched = Hdd_core.Scheduler
module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
module T = Hdd_obs.Trace

type t = {
  trace : T.t option;
  wall_every_commits : int;
  clock : Time.Clock.clock;  (* carried across every swap *)
  mutable spec : Spec.t;
  mutable partition : P.t;
  mutable store : int Store.t;
  mutable sched : int Sched.t;
  mutable cur_init : Granule.t -> int;  (* current address space *)
  mutable remap : Granule.t -> Granule.t;  (* original -> current *)
  mutable epoch : int;
  (* values the current store serves from bootstrap: committed in some
     pre-swap epoch, keyed by current address.  The store only dumps
     versions committed since its own creation, so without this table a
     second swap would silently drop everything the first one carried. *)
  mutable inherited : (Granule.t, Time.t * int * int) Hashtbl.t;
}

let create ?trace ?(wall_every_commits = 16) ~spec ~init () =
  let partition = P.build_exn spec in
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:(Spec.segment_count spec) ~init in
  let sched =
    Sched.create ?trace ~wall_every_commits ~partition ~clock ~store ()
  in
  { trace;
    wall_every_commits;
    clock;
    spec;
    partition;
    store;
    sched;
    cur_init = init;
    remap = Fun.id;
    epoch = 0;
    inherited = Hashtbl.create 64 }

let spec t = t.spec
let partition t = t.partition
let scheduler t = t.sched
let epoch t = t.epoch
let locate t g = t.remap g

let value t g =
  let g = t.remap g in
  match Store.latest_committed t.store g with
  | Some v -> v.Chain.value
  | None -> t.cur_init g

let active t =
  let m = Sched.metrics t.sched in
  m.Sched.begins - m.Sched.commits - m.Sched.aborts

(* Latest committed value of every written granule — the current
   store's committed versions overlaid on what earlier swaps already
   carried — remapped into the new address space.  Collisions (two
   merged granules with one key) resolve to the newest version; equal
   timestamps (one transaction wrote both colliding granules) break to
   the granule committed under the lower segment id, deterministically
   whatever order the tables iterate in. *)
let carry t map_granule =
  let carried : (Granule.t, Time.t * int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  let add g' ((ts, tie, _) as entry) =
    match Hashtbl.find_opt carried g' with
    | Some (ts0, tie0, _) when ts0 > ts || (ts0 = ts && tie0 <= tie) -> ()
    | _ -> Hashtbl.replace carried g' entry
  in
  Hashtbl.iter (fun g entry -> add (map_granule g) entry) t.inherited;
  List.iter
    (fun (g, versions) ->
      match List.rev versions with
      | [] -> ()
      | (ts, v) :: _ -> add (map_granule g) (ts, g.Granule.segment, v))
    (Store.dump t.store);
  carried

(* The swap itself: wall barrier, then spec/partition/store/scheduler
   replaced under the carried clock and a bumped epoch.  [map_granule]
   and [unmap_segment] translate between the old and new address
   spaces (current -> new, and new segment -> old segment for the init
   fallback). *)
let swap t ~new_spec ~new_partition ~kind ~moved ~map_granule ~unmap_segment =
  ignore (Sched.release_wall t.sched);
  let carried = carry t map_granule in
  let old_init = t.cur_init in
  let new_init g =
    match Hashtbl.find_opt carried g with
    | Some (_, _, v) -> v
    | None -> old_init { g with Granule.segment = unmap_segment g.Granule.segment }
  in
  let store =
    Store.create ~segments:(Spec.segment_count new_spec) ~init:new_init
  in
  let sched =
    Sched.create ?trace:t.trace ~wall_every_commits:t.wall_every_commits
      ~partition:new_partition ~clock:t.clock ~store ()
  in
  let old_remap = t.remap in
  t.inherited <- carried;
  t.spec <- new_spec;
  t.partition <- new_partition;
  t.store <- store;
  t.sched <- sched;
  t.cur_init <- new_init;
  t.remap <- (fun g -> map_granule (old_remap g));
  t.epoch <- t.epoch + 1;
  match t.trace with
  | None -> ()
  | Some tr ->
    T.emit tr
      ~at:(Time.Clock.tick t.clock)
      (T.Repartition
         { epoch = t.epoch; kind; moved; fresh_store = true })

let apply t move =
  if active t > 0 then
    invalid_arg
      (Printf.sprintf "Exec.apply: %d transactions still active" (active t));
  match move with
  | Advise.Migrate { class_id; _ } ->
    if class_id < 0 || class_id >= Spec.segment_count t.spec then
      Error (Printf.sprintf "migrate: no class %d" class_id)
    else begin
      (* ownership lives in the multicore engine; serially a migration
         is only the epoch bump and its trace record *)
      ignore (Sched.release_wall t.sched);
      t.epoch <- t.epoch + 1;
      (match t.trace with
      | None -> ()
      | Some tr ->
        T.emit tr
          ~at:(Time.Clock.tick t.clock)
          (T.Repartition
             { epoch = t.epoch;
               kind = "migrate";
               moved = [ class_id ];
               fresh_store = false }));
      Ok ()
    end
  | Advise.Merge { a; b } ->
    let n = Spec.segment_count t.spec in
    if a = b || a < 0 || b < 0 || a >= n || b >= n then
      Error (Printf.sprintf "merge: invalid pair (%d, %d)" a b)
    else begin
      let new_spec, map = Advise.merge_spec t.spec ~a ~b in
      match P.build new_spec with
      | Error e -> Error ("merge: " ^ P.error_to_string e)
      | Ok new_partition ->
        (* merged target keeps [a]'s name; for untouched granules the
           lowest original segment mapping there provides the init *)
        let inverse = Array.make (Spec.segment_count new_spec) max_int in
        Array.iteri
          (fun old nw -> inverse.(nw) <- Int.min inverse.(nw) old)
          map;
        swap t ~new_spec ~new_partition ~kind:"merge" ~moved:[ a; b ]
          ~map_granule:(fun g ->
            { g with Granule.segment = map.(g.Granule.segment) })
          ~unmap_segment:(fun s -> inverse.(s));
        Ok ()
    end
  | Advise.Split { segment; pivot } ->
    let n = Spec.segment_count t.spec in
    if segment < 0 || segment >= n then
      Error (Printf.sprintf "split: no segment %d" segment)
    else if pivot <= 0 then Error "split: pivot must be positive"
    else begin
      let new_spec = Advise.split_spec t.spec ~segment in
      match P.build new_spec with
      | Error e -> Error ("split: " ^ P.error_to_string e)
      | Ok new_partition ->
        let child = n in
        swap t ~new_spec ~new_partition ~kind:"split" ~moved:[ segment; child ]
          ~map_granule:(fun g ->
            if g.Granule.segment = segment && g.Granule.key >= pivot then
              { g with Granule.segment = child }
            else g)
          ~unmap_segment:(fun s -> if s = child then segment else s);
        Ok ()
    end
