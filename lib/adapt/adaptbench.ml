module E = Hdd_runtime.Engine
module D = Hdd_runtime.Differential
module J = Hdd_benchkit.Jsonlite

type result = {
  a_workers : int;
  a_seconds : float;
  a_rotate_every_s : float;
  a_depth : int;
  a_seed : int;
  a_steady_txn_per_s : float;
  a_steady_committed : int;
  a_live_txn_per_s : float;
  a_live_committed : int;
  a_live_repartitions : int;
  a_stw_txn_per_s : float;
  a_stw_committed : int;
  a_stw_restarts : int;
  a_retention_live : float;
  a_retention_stw : float;
}

let retention_floor = 0.70

let mix =
  { E.ro_frac = 0.1;
    abort_frac = 0.05;
    cross_reads = 4;
    own_ops = 2;
    keys_per_segment = 16 }

let run ?(workers = 4) ?(seconds = 1.0) ?(rotate_every_s = 0.125) ?(depth = 8)
    ?(seed = 42) () =
  let workers = Int.min workers (Domain.recommended_domain_count ()) in
  let workers = Int.max 1 workers in
  let partition = D.chain_partition depth in
  let timed ?rotate seconds seed =
    E.run_timed ~partition ~init:D.default_init ~workers ~seconds
      ?rotate_every_s:rotate ~mix ~seed ()
  in
  let steady = timed seconds seed in
  let live = timed ~rotate:rotate_every_s seconds (seed + 1) in
  (* stop-the-world: a fresh engine per rotation window, the rebuild
     cost landing inside the measured wall-clock *)
  let windows =
    Int.max 2 (int_of_float (Float.round (seconds /. rotate_every_s)))
  in
  let stw_start = Unix.gettimeofday () in
  let stw_committed = ref 0 in
  for w = 0 to windows - 1 do
    let t = timed (seconds /. float_of_int windows) (seed + 2 + w) in
    stw_committed := !stw_committed + t.E.t_stats.E.committed
  done;
  let stw_elapsed = Unix.gettimeofday () -. stw_start in
  let rate committed elapsed =
    if elapsed <= 0. then 0. else float_of_int committed /. elapsed
  in
  let steady_rate =
    rate steady.E.t_stats.E.committed steady.E.t_elapsed_s
  in
  let live_rate = rate live.E.t_stats.E.committed live.E.t_elapsed_s in
  let stw_rate = rate !stw_committed stw_elapsed in
  let retention r = if steady_rate <= 0. then 0. else r /. steady_rate in
  { a_workers = workers;
    a_seconds = seconds;
    a_rotate_every_s = rotate_every_s;
    a_depth = depth;
    a_seed = seed;
    a_steady_txn_per_s = steady_rate;
    a_steady_committed = steady.E.t_stats.E.committed;
    a_live_txn_per_s = live_rate;
    a_live_committed = live.E.t_stats.E.committed;
    a_live_repartitions = live.E.t_stats.E.repartitions;
    a_stw_txn_per_s = stw_rate;
    a_stw_committed = !stw_committed;
    a_stw_restarts = windows;
    a_retention_live = retention live_rate;
    a_retention_stw = retention stw_rate }

let gates r =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if r.a_live_repartitions < 1 then
    bad "live run applied no repartition (rotate_every_s=%.3f over %.2fs)"
      r.a_rotate_every_s r.a_seconds;
  if r.a_steady_committed = 0 then bad "steady run committed nothing";
  if r.a_live_committed = 0 then bad "live run committed nothing";
  if r.a_stw_committed = 0 then bad "stop-the-world run committed nothing";
  if r.a_retention_live < retention_floor then
    bad "live retention %.3f below the %.2f floor" r.a_retention_live
      retention_floor;
  List.rev !problems

let to_json r =
  J.with_schema
    [ ("benchmark", J.Str "adaptive_repartition");
      ("hierarchy", J.Str (Printf.sprintf "chain-%d" r.a_depth));
      ("workers", J.num_of_int r.a_workers);
      ("seconds_per_mode", J.Num r.a_seconds);
      ("rotate_every_s", J.Num r.a_rotate_every_s);
      ("seed", J.num_of_int r.a_seed);
      ("steady",
       J.Obj
         [ ("txn_per_s", J.Num r.a_steady_txn_per_s);
           ("committed", J.num_of_int r.a_steady_committed) ]);
      ("live",
       J.Obj
         [ ("txn_per_s", J.Num r.a_live_txn_per_s);
           ("committed", J.num_of_int r.a_live_committed);
           ("repartitions", J.num_of_int r.a_live_repartitions) ]);
      ("stop_the_world",
       J.Obj
         [ ("txn_per_s", J.Num r.a_stw_txn_per_s);
           ("committed", J.num_of_int r.a_stw_committed);
           ("restarts", J.num_of_int r.a_stw_restarts) ]);
      ("retention_live", J.Num r.a_retention_live);
      ("retention_stop_the_world", J.Num r.a_retention_stw);
      ("retention_floor", J.Num retention_floor) ]

let pp ppf r =
  Format.fprintf ppf
    "adaptive repartition, chain-%d, %d workers, %.2fs/mode, rotation every \
     %.3fs (seed %d)@."
    r.a_depth r.a_workers r.a_seconds r.a_rotate_every_s r.a_seed;
  Format.fprintf ppf "  %-16s %12s %12s %14s@." "mode" "txn/s" "committed"
    "repartitions";
  Format.fprintf ppf "  %-16s %12.0f %12d %14s@." "steady"
    r.a_steady_txn_per_s r.a_steady_committed "-";
  Format.fprintf ppf "  %-16s %12.0f %12d %14d@." "live"
    r.a_live_txn_per_s r.a_live_committed r.a_live_repartitions;
  Format.fprintf ppf "  %-16s %12.0f %12d %14s@." "stop-the-world"
    r.a_stw_txn_per_s r.a_stw_committed
    (Printf.sprintf "%d restarts" r.a_stw_restarts);
  Format.fprintf ppf "  retention: live %.2f, stop-the-world %.2f (floor %.2f)"
    r.a_retention_live r.a_retention_stw retention_floor
