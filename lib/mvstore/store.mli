(** The multi-version database: one {!Segment} controller per data segment
    of the partition, addressed through {!Granule.t}. *)

type 'a t

val create : segments:int -> init:(Granule.t -> 'a) -> 'a t
(** Segments are numbered [0 .. segments-1].
    @raise Invalid_argument if [segments <= 0]. *)

val segment_count : 'a t -> int

val segment : 'a t -> int -> 'a Segment.t
(** @raise Invalid_argument when out of range. *)

val chain : 'a t -> Granule.t -> 'a Chain.t

val committed_before : 'a t -> Granule.t -> ts:Time.t -> 'a Chain.version option
(** Protocol A / C read: latest committed version strictly below [ts]. *)

val candidate_before : 'a t -> Granule.t -> ts:Time.t -> 'a Chain.read_candidate option
(** Protocol B / MVTO read candidate. *)

val install : 'a t -> Granule.t -> ts:Time.t -> writer:Txn.id -> value:'a -> 'a Chain.version
val commit_version : 'a t -> Granule.t -> ts:Time.t -> unit
val discard_version : 'a t -> Granule.t -> ts:Time.t -> unit

val gc : 'a t -> before:Time.t -> int
val version_count : 'a t -> int
