(** The multi-version database: one {!Segment} controller per data segment
    of the partition, addressed through {!Granule.t}.  Chains are the
    array-backed {!Achain} representation; the list-backed {!Chain}
    remains available as the benchmark ablation partner. *)

type 'a t

val create : segments:int -> init:(Granule.t -> 'a) -> 'a t
(** Segments are numbered [0 .. segments-1].
    @raise Invalid_argument if [segments <= 0]. *)

val segment_count : 'a t -> int

val set_trace : 'a t -> Hdd_obs.Trace.t option -> unit
(** Propagate a trace sink to every segment controller; see
    {!Segment.set_trace}. *)

val segment : 'a t -> int -> 'a Segment.t
(** @raise Invalid_argument when out of range. *)

val chain : 'a t -> Granule.t -> 'a Achain.t

val committed_before : 'a t -> Granule.t -> ts:Time.t -> 'a Chain.version option
(** Protocol A / C read: latest committed version strictly below [ts]. *)

val candidate_before : 'a t -> Granule.t -> ts:Time.t -> 'a Chain.read_candidate option
(** Protocol B / MVTO read candidate. *)

val predecessor_rts : 'a t -> Granule.t -> ts:Time.t -> Time.t option
(** Read timestamp of the latest live version below [ts] — the MVTO
    late-write check. *)

val latest_committed : 'a t -> Granule.t -> 'a Chain.version option

val install : 'a t -> Granule.t -> ts:Time.t -> writer:Txn.id -> value:'a -> 'a Chain.version
val commit_version : 'a t -> Granule.t -> ts:Time.t -> unit
val discard_version : 'a t -> Granule.t -> ts:Time.t -> unit

val commit_installed : 'a t -> 'a Chain.version -> unit
(** O(1) commit through the handle {!install} returned. *)

val discard_installed : 'a t -> Granule.t -> 'a Chain.version -> unit
(** Discard through the handle — no timestamp search of the chain. *)

val gc : 'a t -> before:Time.t -> int
(** Uniform-threshold collection: every segment trimmed below [before]. *)

val gc_wall : 'a t -> wall:Time.t array -> int
(** Wall-driven collection (§7.3): segment [i] is trimmed to the newest
    committed version below [wall.(i)] plus everything above it — the
    per-segment thresholds a released time wall (or the scheduler's
    per-segment watermark vector) justifies.
    @raise Invalid_argument if the vector length differs from
    {!segment_count}. *)

val committed_versions : 'a t -> Granule.t -> (Time.t * 'a) list
(** The committed versions of one granule, oldest first — the
    serialization view used by checkpoints and state-equality checks.
    Pending versions are invisible (not yet part of the committed
    database) and so is the bootstrap version (timestamp zero): it is
    derivable from [init], not logged history, and chains re-create it
    on demand, so including it would make dumps depend on which side
    happened to materialize a chain. *)

val dump : 'a t -> (Granule.t * (Time.t * 'a) list) list
(** {!committed_versions} of every granule that has one, in granule
    order — a canonical committed-state snapshot, directly comparable
    with [=] between two stores over the same partition. *)

val trim_dump :
  wall:Time.t array ->
  (Granule.t * (Time.t * 'a) list) list ->
  (Granule.t * (Time.t * 'a) list) list
(** Apply the {!gc_wall} cut rule to a dump: per granule of segment [i],
    keep the newest version below [wall.(i)] plus everything at or above
    it.  Pure — the oracle form of the cut, used to state checkpoint
    equivalence. *)

val dump_at_wall : 'a t -> wall:Time.t array -> (Granule.t * (Time.t * 'a) list) list
(** [trim_dump ~wall (dump t)] with the length check of {!gc_wall} — the
    consistent snapshot a checkpoint serializes at a released wall.
    @raise Invalid_argument if the vector length differs from
    {!segment_count}. *)

val version_count : 'a t -> int

val max_chain_length : 'a t -> int
(** Longest chain anywhere in the store (telemetry). *)
