(** Immutable committed-version index — the publication vehicle for the
    parallel runtime's Protocol A reads.

    Each owner domain keeps one of these alongside its mutable
    {!Store.t}: on every commit it extends the persistent map with the
    freshly installed versions and swaps the new value into an
    [Atomic.t].  Readers on other domains do a single [Atomic.get] and
    then walk a purely immutable structure — no locks, no fences beyond
    the swap itself, and the paper's guarantee that a Protocol A read
    registers nothing maps onto memory that is never written after
    publication.

    Only {e committed} versions enter a snapshot, so [latest_before]
    here is the snapshot-read rule ([committed_before]) of the serial
    store restricted to what the publishing domain had committed at swap
    time; the activity-link threshold machinery guarantees that is
    enough (see DESIGN.md §13). *)

type t

val empty : t

val add_commit : t -> Granule.t -> ts:Time.t -> value:int -> t
(** Extend with a committed version.  Per granule, commit order is
    version-timestamp order, so [ts] must exceed the granule's newest.
    @raise Invalid_argument otherwise. *)

val latest_before : t -> Granule.t -> ts:Time.t -> (Time.t * int) option
(** The newest committed version strictly below [ts] — timestamp and
    value — or [None] when the granule has no version below [ts] in this
    snapshot (callers fall back to the bootstrap version). *)

val version_count : t -> int
(** Committed versions indexed, across all granules. *)

val granule_count : t -> int
