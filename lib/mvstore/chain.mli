(** Version chains: the per-granule core of the multi-version store.

    A chain holds the versions of one data granule, newest first, each
    stamped with the initiation time of its writer ([TS(d^v)], §4.0).  A
    version is [Pending] until its writer commits; aborting discards it.
    Versions carry a read timestamp so the intra-class multi-version
    timestamp-ordering protocol (Protocol B) can reject late writes; the
    hierarchical protocols A and C never touch it — that is the paper's
    point. *)

type state = Pending | Committed

(* The record is exposed (not private) so the alternative array-backed
   representation ({!Achain}) can share it; outside the storage layer
   treat it as read-only and go through {!mark_read}. *)
type 'a version = {
  ts : Time.t;  (** write timestamp: [I] of the creating transaction *)
  writer : Txn.id;
  value : 'a;
  mutable state : state;
  mutable rts : Time.t;  (** largest timestamp that has read this version *)
}

type 'a t

val create : initial:'a -> 'a t
(** A chain whose first version was written by {!Txn.bootstrap} at time
    zero and is committed. *)

val install : 'a t -> ts:Time.t -> writer:Txn.id -> value:'a -> 'a version
(** Add a pending version.  @raise Invalid_argument if a live version with
    the same timestamp exists or [ts <= 0]. *)

val commit : 'a t -> ts:Time.t -> unit
(** Mark the version pending at [ts] committed.  @raise Not_found if no
    pending version carries that timestamp. *)

val discard : 'a t -> ts:Time.t -> unit
(** Remove the version at [ts] (writer aborted).  @raise Not_found if
    absent; @raise Invalid_argument if it is committed. *)

val commit_version : 'a version -> unit
(** O(1) commit through the handle {!install} returned — no timestamp
    lookup.  Idempotent, like {!commit}. *)

val discard_version : 'a t -> 'a version -> unit
(** Remove a version through its handle (no timestamp search; the version
    is matched physically).  @raise Invalid_argument if committed. *)

type 'a read_candidate =
  | Version of 'a version
  | Wait_for of Txn.id
      (** the latest version below the timestamp is still pending: a
          Protocol-B reader must wait for its writer *)

val committed_before : 'a t -> ts:Time.t -> 'a version option
(** Latest committed version with [ts' < ts] — the lookup of Protocols A
    and C.  Never waits; [None] only if even the bootstrap version was
    garbage-collected past [ts]. *)

val candidate_before : 'a t -> ts:Time.t -> 'a read_candidate option
(** Latest live (pending or committed) version with [ts' < ts] — the
    Protocol-B / MVTO read rule.  [None] under the same condition as
    {!committed_before}. *)

val mark_read : 'a version -> at:Time.t -> unit
(** Raise the version's read timestamp to at least [at]. *)

val predecessor_rts : 'a t -> ts:Time.t -> Time.t option
(** Read timestamp of the latest live version below [ts] (the would-be
    predecessor of a write at [ts]); [None] if there is none. *)

val latest_committed : 'a t -> 'a version option
val versions : 'a t -> 'a version list
(** Newest first, live versions only. *)

val length : 'a t -> int

val gc : 'a t -> before:Time.t -> int
(** Drop committed versions strictly older than the latest committed
    version below [before] (which must stay readable for snapshots at
    [before]).  Pending versions are never collected.  Returns the number
    of versions dropped. *)
