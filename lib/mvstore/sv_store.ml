type 'a cell = {
  mutable value : 'a;
  mutable wts : Time.t;
  mutable rts : Time.t;
}

type 'a t = {
  init : Granule.t -> 'a;
  cells : 'a cell Granule.Tbl.t;
}

let create ~init = { init; cells = Granule.Tbl.create 256 }

let cell t g =
  match Granule.Tbl.find_opt t.cells g with
  | Some c -> c
  | None ->
    let c = { value = t.init g; wts = Time.zero; rts = Time.zero } in
    Granule.Tbl.add t.cells g c;
    c

let read t g =
  let c = cell t g in
  (c.value, c.wts)

let write t g ~value ~wts =
  let c = cell t g in
  c.value <- value;
  c.wts <- wts

let set_rts t g ts =
  let c = cell t g in
  if ts > c.rts then c.rts <- ts

let granule_count t = Granule.Tbl.length t.cells
