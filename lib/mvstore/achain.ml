type 'a t = {
  mutable versions : 'a Chain.version array;  (* ascending by ts *)
  mutable len : int;
}

let mk_version ~ts ~writer ~value ~state : 'a Chain.version =
  { Chain.ts; writer; value; state; rts = Time.zero }

let create ~initial =
  let v0 =
    mk_version ~ts:Time.zero ~writer:Txn.bootstrap.Txn.id ~value:initial
      ~state:Chain.Committed
  in
  { versions = Array.make 4 v0; len = 1 }

(* Index of the last version with ts < bound, or -1. *)
let last_below t ~bound =
  let lo = ref 0 and hi = ref (t.len - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.versions.(mid).Chain.ts < bound then begin
      found := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !found

let find_exact t ~ts =
  let i = last_below t ~bound:(ts + 1) in
  if i >= 0 && t.versions.(i).Chain.ts = ts then Some i else None

let install t ~ts ~writer ~value =
  if ts <= Time.zero then invalid_arg "Achain.install: ts must be positive";
  if find_exact t ~ts <> None then
    invalid_arg "Achain.install: duplicate version timestamp";
  let v = mk_version ~ts ~writer ~value ~state:Chain.Pending in
  if t.len = Array.length t.versions then begin
    let bigger = Array.make (2 * t.len) v in
    Array.blit t.versions 0 bigger 0 t.len;
    t.versions <- bigger
  end;
  (* insert keeping ascending order *)
  let pos = last_below t ~bound:ts + 1 in
  Array.blit t.versions pos t.versions (pos + 1) (t.len - pos);
  t.versions.(pos) <- v;
  t.len <- t.len + 1;
  v

let commit t ~ts =
  match find_exact t ~ts with
  | Some i -> t.versions.(i).Chain.state <- Chain.Committed
  | None -> raise Not_found

let remove_at t i =
  Array.blit t.versions (i + 1) t.versions i (t.len - i - 1);
  t.len <- t.len - 1

let discard t ~ts =
  match find_exact t ~ts with
  | None -> raise Not_found
  | Some i ->
    if t.versions.(i).Chain.state = Chain.Committed then
      invalid_arg "Achain.discard: version is committed";
    remove_at t i

let commit_version = Chain.commit_version

let discard_version t (v : 'a Chain.version) =
  if v.Chain.state = Chain.Committed then
    invalid_arg "Achain.discard: version is committed";
  match find_exact t ~ts:v.Chain.ts with
  | Some i when t.versions.(i) == v -> remove_at t i
  | _ -> raise Not_found

let committed_before t ~ts =
  let rec scan i =
    if i < 0 then None
    else if t.versions.(i).Chain.state = Chain.Committed then
      Some t.versions.(i)
    else scan (i - 1)
  in
  scan (last_below t ~bound:ts)

let candidate_before t ~ts =
  let i = last_below t ~bound:ts in
  if i < 0 then None
  else
    let v = t.versions.(i) in
    Some
      (match v.Chain.state with
      | Chain.Committed -> Chain.Version v
      | Chain.Pending -> Chain.Wait_for v.Chain.writer)

let predecessor_rts t ~ts =
  let i = last_below t ~bound:ts in
  if i < 0 then None else Some t.versions.(i).Chain.rts

let latest_committed t =
  let rec scan i =
    if i < 0 then None
    else if t.versions.(i).Chain.state = Chain.Committed then
      Some t.versions.(i)
    else scan (i - 1)
  in
  scan (t.len - 1)

let versions t = List.rev (List.init t.len (fun i -> t.versions.(i)))

let length t = t.len

let gc t ~before =
  match committed_before t ~ts:before with
  | None -> 0
  | Some keep ->
    (* in-place compaction: versions are ascending, so survivors keep
       their relative order as they slide down *)
    let w = ref 0 in
    for i = 0 to t.len - 1 do
      let v = t.versions.(i) in
      if v.Chain.ts >= keep.Chain.ts || v.Chain.state = Chain.Pending then begin
        if !w < i then t.versions.(!w) <- v;
        incr w
      end
    done;
    let dropped = t.len - !w in
    t.len <- !w;
    dropped
