(* Packed per-segment version store: per key a flat [int array] of
   [ts; value] pairs in ascending ts order.  The owner mutates [buf] in
   place; readers only ever see frozen copies handed out by [publish],
   so no synchronization beyond the engine's atomic view swap is needed.
   Hot helpers are top-level and loop by tail recursion on ints — no
   refs, no tuples, no closures — so the steady-state commit path
   allocates nothing (DESIGN.md §16 budget table). *)

type slot = {
  mutable buf : int array;     (* packed [ts; value] pairs, ts ascending *)
  mutable len : int;           (* used ints (2 per version) *)
  mutable frozen : int array;  (* immutable copy as of last publish *)
  mutable frozen_len : int;
  mutable dirty : bool;        (* buf has versions frozen has not *)
}

type t = {
  mutable slots : slot array;
  mutable nkeys : int;              (* 1 + highest key touched *)
  mutable dirty_keys : int array;   (* keys with [dirty] slots *)
  mutable dirty_n : int;
  mutable watermark : Time.t;       (* oldest ts future reads may name *)
  mutable versions : int;           (* live versions across all keys *)
}

type view = {
  v_bufs : int array array;  (* frozen, never mutated after publish *)
  v_lens : int array;
  v_n : int;
}

let empty_ints : int array = [||]

let fresh_slot () =
  { buf = empty_ints; len = 0; frozen = empty_ints; frozen_len = 0;
    dirty = false }

let create () =
  { slots = [||]; nkeys = 0; dirty_keys = [||]; dirty_n = 0;
    watermark = Time.zero; versions = 0 }

let empty_view = { v_bufs = [||]; v_lens = [||]; v_n = 0 }

let ensure_key t key =
  if key < 0 then invalid_arg "Pstore: negative key";
  if key >= Array.length t.slots then begin
    let cap = max (key + 1) (max 8 (2 * Array.length t.slots)) in
    let slots = Array.init cap (fun i ->
        if i < Array.length t.slots then t.slots.(i) else fresh_slot ())
    in
    t.slots <- slots;
    (* dirty_keys can never exceed the number of keys *)
    let dk = Array.make cap 0 in
    Array.blit t.dirty_keys 0 dk 0 t.dirty_n;
    t.dirty_keys <- dk
  end;
  if key >= t.nkeys then t.nkeys <- key + 1

(* Index of the first pair whose ts is >= [ts], in ints (even), over
   buf[0 .. len).  Tail-recursive binary search, no refs. *)
let rec first_at_or_above buf lo hi ts =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 land lnot 1 in
    if Array.unsafe_get buf mid >= ts then first_at_or_above buf lo mid ts
    else first_at_or_above buf (mid + 2) hi ts

(* Drop versions no wall-bounded read can name: everything below the
   watermark except the newest such version (the one a read exactly at
   the watermark would serve).  Compacts [buf] in place — readers only
   see frozen copies — so a steady watermark advance keeps capacity
   bounded without allocating.  Returns the number of ints dropped. *)
let compact slot wm =
  let cut = first_at_or_above slot.buf 0 slot.len wm in
  let keep_from = if cut >= 2 then cut - 2 else 0 in
  if keep_from > 0 then begin
    Array.blit slot.buf keep_from slot.buf 0 (slot.len - keep_from);
    slot.len <- slot.len - keep_from
  end;
  keep_from

let add_commit t ~key ~ts ~value =
  ensure_key t key;
  let slot = Array.unsafe_get t.slots key in
  if slot.len > 0 && Array.unsafe_get slot.buf (slot.len - 2) >= ts then
    invalid_arg
      (Printf.sprintf "Pstore.add_commit: ts %d not above newest %d at key %d"
         ts (Array.unsafe_get slot.buf (slot.len - 2)) key);
  if slot.len + 2 > Array.length slot.buf then begin
    (* Try in-place reclamation below the watermark first; grow only if
       less than a quarter of the buffer came back. *)
    let before = slot.len in
    let dropped = compact slot t.watermark in
    t.versions <- t.versions - (dropped / 2);
    if Array.length slot.buf - slot.len < max 2 (before / 4) then begin
      let cap = max 8 (2 * Array.length slot.buf) in
      let buf = Array.make cap 0 in
      Array.blit slot.buf 0 buf 0 slot.len;
      slot.buf <- buf
    end
  end;
  Array.unsafe_set slot.buf slot.len ts;
  Array.unsafe_set slot.buf (slot.len + 1) value;
  slot.len <- slot.len + 2;
  t.versions <- t.versions + 1;
  if not slot.dirty then begin
    slot.dirty <- true;
    Array.unsafe_set t.dirty_keys t.dirty_n key;
    t.dirty_n <- t.dirty_n + 1
  end

let set_watermark t wm = if wm > t.watermark then t.watermark <- wm

(* ts of the newest version strictly below [ts] over a packed buffer,
   or Time.zero when none: the bootstrap value. *)
let latest_ts_below buf len ts =
  let i = first_at_or_above buf 0 len ts in
  if i = 0 then Time.zero else Array.unsafe_get buf (i - 2)

let value_at_ts buf len ts fallback =
  let i = first_at_or_above buf 0 len (ts + 1) in
  if i = 0 || Array.unsafe_get buf (i - 2) <> ts then fallback
  else Array.unsafe_get buf (i - 1)

let latest_before t ~key ~ts =
  if key >= t.nkeys then Time.zero
  else
    let slot = Array.unsafe_get t.slots key in
    latest_ts_below slot.buf slot.len ts

let value_of t ~key ~ts ~fallback =
  if key >= t.nkeys then fallback
  else
    let slot = Array.unsafe_get t.slots key in
    value_at_ts slot.buf slot.len ts fallback

let publish t =
  let n = t.nkeys in
  (* Freeze the dirty slots: copy the live range once per publication. *)
  for i = 0 to t.dirty_n - 1 do
    let key = Array.unsafe_get t.dirty_keys i in
    let slot = Array.unsafe_get t.slots key in
    slot.frozen <- Array.sub slot.buf 0 slot.len;
    slot.frozen_len <- slot.len;
    slot.dirty <- false
  done;
  t.dirty_n <- 0;
  { v_bufs = Array.init n (fun k -> (Array.unsafe_get t.slots k).frozen);
    v_lens = Array.init n (fun k -> (Array.unsafe_get t.slots k).frozen_len);
    v_n = n }

let view_latest_before v ~key ~ts =
  if key >= v.v_n then Time.zero
  else
    latest_ts_below (Array.unsafe_get v.v_bufs key)
      (Array.unsafe_get v.v_lens key) ts

let view_value_of v ~key ~ts ~fallback =
  if key >= v.v_n then fallback
  else
    value_at_ts (Array.unsafe_get v.v_bufs key)
      (Array.unsafe_get v.v_lens key) ts fallback

let latest_before_pair t ~key ~ts =
  let vts = latest_before t ~key ~ts in
  if vts = Time.zero then None
  else Some (vts, value_of t ~key ~ts:vts ~fallback:0)

let view_latest_before_pair v ~key ~ts =
  let vts = view_latest_before v ~key ~ts in
  if vts = Time.zero then None
  else Some (vts, view_value_of v ~key ~ts:vts ~fallback:0)

let dirty_count t = t.dirty_n
let version_count t = t.versions
let key_count t = t.nkeys
let view_version_count v =
  let c = ref 0 in
  for k = 0 to v.v_n - 1 do c := !c + (v.v_lens.(k) / 2) done;
  !c
