(** Single-version store: the substrate of the classical baselines
    (two-phase locking and basic timestamp ordering), which keep one copy
    of each granule plus the read/write registrations the paper wants to
    avoid.

    The cell records the write timestamp of the last writer so the schedule
    log can name the version a read observed, and the read timestamp
    register that basic TSO maintains. *)

type 'a cell = private {
  mutable value : 'a;
  mutable wts : Time.t;  (** [I] of the last (committed or in-place) writer *)
  mutable rts : Time.t;  (** basic-TSO read register *)
}

type 'a t

val create : init:(Granule.t -> 'a) -> 'a t
val cell : 'a t -> Granule.t -> 'a cell
val read : 'a t -> Granule.t -> 'a * Time.t
(** Value and the write timestamp of the version it represents. *)

val write : 'a t -> Granule.t -> value:'a -> wts:Time.t -> unit
val set_rts : 'a t -> Granule.t -> Time.t -> unit
(** Raise the cell's read register to at least the given time. *)

val granule_count : 'a t -> int
