type 'a t = {
  id : int;
  init : int -> 'a;
  chains : (int, 'a Achain.t) Hashtbl.t;
  mutable trace : Hdd_obs.Trace.t option;
}

let create ~id ~init = { id; init; chains = Hashtbl.create 64; trace = None }

let id t = t.id

let set_trace t trace = t.trace <- trace

let chain t key =
  match Hashtbl.find_opt t.chains key with
  | Some c -> c
  | None ->
    let c = Achain.create ~initial:(t.init key) in
    Hashtbl.add t.chains key c;
    c

let mem t key = Hashtbl.mem t.chains key

let granule_count t = Hashtbl.length t.chains

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.chains [] |> List.sort compare

let gc t ~before =
  let dropped = Hashtbl.fold (fun _ c acc -> acc + Achain.gc c ~before) t.chains 0 in
  (match t.trace with
  | Some tr when dropped > 0 ->
    Hdd_obs.Trace.emit_here tr
      (Hdd_obs.Trace.Seg_gc { segment = t.id; dropped })
  | _ -> ());
  dropped

let version_count t =
  Hashtbl.fold (fun _ c acc -> acc + Achain.length c) t.chains 0

let max_chain_length t =
  Hashtbl.fold (fun _ c acc -> Int.max acc (Achain.length c)) t.chains 0
