type 'a t = {
  id : int;
  init : int -> 'a;
  chains : (int, 'a Achain.t) Hashtbl.t;
}

let create ~id ~init = { id; init; chains = Hashtbl.create 64 }

let id t = t.id

let chain t key =
  match Hashtbl.find_opt t.chains key with
  | Some c -> c
  | None ->
    let c = Achain.create ~initial:(t.init key) in
    Hashtbl.add t.chains key c;
    c

let mem t key = Hashtbl.mem t.chains key

let granule_count t = Hashtbl.length t.chains

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.chains [] |> List.sort compare

let gc t ~before =
  Hashtbl.fold (fun _ c acc -> acc + Achain.gc c ~before) t.chains 0

let version_count t =
  Hashtbl.fold (fun _ c acc -> acc + Achain.length c) t.chains 0

let max_chain_length t =
  Hashtbl.fold (fun _ c acc -> Int.max acc (Achain.length c)) t.chains 0
