(** Packed-int multi-version store for the multicore runtime's hot path.

    {!Snapshot} is a persistent map of boxed version lists — pleasant to
    publish, but every commit allocates map spine and list cells, and
    every read chases pointers.  [Pstore] flattens each granule's
    version chain into a packed [int array] of [ts; value] pairs in
    ascending-ts order — the same layout trick that took trace events
    116→12 ns (DESIGN.md §9) — and splits the store into two faces:

    - the {e owner face} ({!t}): mutable, touched only by the owning
      worker domain.  {!add_commit} appends in place and allocates
      nothing once buffers reach steady-state capacity (in-place
      compaction below the {!set_watermark} point reclaims space
      instead of growing);
    - the {e reader face} ({!view}): an immutable frozen copy cut by
      {!publish} once per batch, swapped into an [Atomic.t] by the
      engine.  Views are never mutated, so cross-domain readers need no
      synchronization beyond the view swap itself.

    Reads return the version timestamp directly ([Time.zero] = the
    bootstrap value predating every commit) — no option, no tuple — so
    the Protocol A/B/C read paths allocate nothing.  The [_pair]
    variants are allocating conveniences for tests and tools. *)

type t
(** Owner face: one per segment, single-domain mutable. *)

type view
(** Reader face: immutable frozen copy, safe to share across domains. *)

val create : unit -> t
val empty_view : view

val add_commit : t -> key:int -> ts:Time.t -> value:int -> unit
(** Append a version; [ts] must exceed the key's newest version.
    Amortized zero-allocation: appends in place, compacting versions
    below the watermark out of the buffer before growing it. *)

val set_watermark : t -> Time.t -> unit
(** Advance the oldest timestamp future reads may name (a released wall
    component).  Versions below it — except the newest such version,
    which a read exactly at the watermark still serves — become
    reclaimable by in-place compaction.  Monotone; lower values are
    ignored. *)

val latest_before : t -> key:int -> ts:Time.t -> Time.t
(** Timestamp of the newest version strictly below [ts], or [Time.zero]
    when the read predates every version (bootstrap). *)

val value_of : t -> key:int -> ts:Time.t -> fallback:int -> int
(** Value of the exact version [ts], or [fallback] if absent. *)

val publish : t -> view
(** Freeze the keys dirtied since the last publish (one copy of each
    dirty key's live range) and return a view of the whole segment.
    Clean keys share their previous frozen buffer. *)

val view_latest_before : view -> key:int -> ts:Time.t -> Time.t
val view_value_of : view -> key:int -> ts:Time.t -> fallback:int -> int

val latest_before_pair : t -> key:int -> ts:Time.t -> (Time.t * int) option
(** Allocating convenience mirroring {!Snapshot.latest_before}. *)

val view_latest_before_pair :
  view -> key:int -> ts:Time.t -> (Time.t * int) option

val dirty_count : t -> int
(** Keys with versions the last published view does not hold — zero
    means {!publish} would return a view equivalent to the last one, so
    the caller can skip the swap entirely. *)

val version_count : t -> int
(** Live (uncompacted) versions across all keys. *)

val key_count : t -> int
val view_version_count : view -> int
