type 'a t = { segments : 'a Segment.t array }

let create ~segments ~init =
  if segments <= 0 then invalid_arg "Store.create: segments must be > 0";
  { segments =
      Array.init segments (fun id ->
          Segment.create ~id ~init:(fun key ->
              init (Granule.make ~segment:id ~key))) }

let segment_count t = Array.length t.segments

let set_trace t trace = Array.iter (fun s -> Segment.set_trace s trace) t.segments

let segment t i =
  if i < 0 || i >= Array.length t.segments then
    invalid_arg (Printf.sprintf "Store.segment: %d out of range" i);
  t.segments.(i)

let chain t (g : Granule.t) = Segment.chain (segment t g.Granule.segment) g.Granule.key

let committed_before t g ~ts = Achain.committed_before (chain t g) ~ts
let candidate_before t g ~ts = Achain.candidate_before (chain t g) ~ts
let predecessor_rts t g ~ts = Achain.predecessor_rts (chain t g) ~ts
let latest_committed t g = Achain.latest_committed (chain t g)

let install t g ~ts ~writer ~value = Achain.install (chain t g) ~ts ~writer ~value
let commit_version t g ~ts = Achain.commit (chain t g) ~ts
let discard_version t g ~ts = Achain.discard (chain t g) ~ts

let commit_installed _t v = Achain.commit_version v
let discard_installed t g v = Achain.discard_version (chain t g) v

let gc t ~before =
  Array.fold_left (fun acc s -> acc + Segment.gc s ~before) 0 t.segments

let gc_wall t ~wall =
  if Array.length wall <> Array.length t.segments then
    invalid_arg "Store.gc_wall: threshold vector length mismatch";
  let dropped = ref 0 in
  Array.iteri
    (fun i s -> dropped := !dropped + Segment.gc s ~before:wall.(i))
    t.segments;
  !dropped

let committed_versions t g =
  List.rev_map
    (fun (v : 'a Chain.version) -> (v.Chain.ts, v.Chain.value))
    (List.filter
       (fun (v : 'a Chain.version) ->
         v.Chain.state = Chain.Committed && v.Chain.ts > Time.zero)
       (Achain.versions (chain t g)))

let dump t =
  let out = ref [] in
  for seg = Array.length t.segments - 1 downto 0 do
    let s = t.segments.(seg) in
    List.iter
      (fun key ->
        let g = Granule.make ~segment:seg ~key in
        match committed_versions t g with
        | [] -> ()
        | vs -> out := (g, vs) :: !out)
      (List.sort compare (Segment.keys s))
  done;
  !out

let trim_dump ~wall d =
  List.filter_map
    (fun ((g : Granule.t), vs) ->
      let w = wall.(g.Granule.segment) in
      (* the wall-cut rule of gc_wall: newest committed below the wall,
         plus everything at or above it *)
      let below = List.filter (fun (ts, _) -> ts < w) vs in
      let keep_below =
        match List.rev below with last :: _ -> [ last ] | [] -> []
      in
      match keep_below @ List.filter (fun (ts, _) -> ts >= w) vs with
      | [] -> None
      | vs -> Some (g, vs))
    d

let dump_at_wall t ~wall =
  if Array.length wall <> Array.length t.segments then
    invalid_arg "Store.dump_at_wall: wall vector length mismatch";
  trim_dump ~wall (dump t)

let version_count t =
  Array.fold_left (fun acc s -> acc + Segment.version_count s) 0 t.segments

let max_chain_length t =
  Array.fold_left
    (fun acc s -> Int.max acc (Segment.max_chain_length s))
    0 t.segments
