type 'a t = { segments : 'a Segment.t array }

let create ~segments ~init =
  if segments <= 0 then invalid_arg "Store.create: segments must be > 0";
  { segments =
      Array.init segments (fun id ->
          Segment.create ~id ~init:(fun key ->
              init (Granule.make ~segment:id ~key))) }

let segment_count t = Array.length t.segments

let segment t i =
  if i < 0 || i >= Array.length t.segments then
    invalid_arg (Printf.sprintf "Store.segment: %d out of range" i);
  t.segments.(i)

let chain t (g : Granule.t) = Segment.chain (segment t g.Granule.segment) g.Granule.key

let committed_before t g ~ts = Chain.committed_before (chain t g) ~ts
let candidate_before t g ~ts = Chain.candidate_before (chain t g) ~ts

let install t g ~ts ~writer ~value = Chain.install (chain t g) ~ts ~writer ~value
let commit_version t g ~ts = Chain.commit (chain t g) ~ts
let discard_version t g ~ts = Chain.discard (chain t g) ~ts

let gc t ~before =
  Array.fold_left (fun acc s -> acc + Segment.gc s ~before) 0 t.segments

let version_count t =
  Array.fold_left (fun acc s -> acc + Segment.version_count s) 0 t.segments
