type entry = { ts : Time.t; value : int }

type t = {
  index : entry list Granule.Map.t;  (* newest first *)
  versions : int;
}

let empty = { index = Granule.Map.empty; versions = 0 }

let add_commit t g ~ts ~value =
  let prev =
    match Granule.Map.find_opt g t.index with Some l -> l | None -> []
  in
  (match prev with
  | { ts = newest; _ } :: _ when ts <= newest ->
    invalid_arg
      (Printf.sprintf
         "Snapshot.add_commit: ts %d not above newest %d at %s" ts newest
         (Granule.to_string g))
  | _ -> ());
  { index = Granule.Map.add g ({ ts; value } :: prev) t.index;
    versions = t.versions + 1 }

let latest_before t g ~ts =
  match Granule.Map.find_opt g t.index with
  | None -> None
  | Some entries ->
    let rec go = function
      | [] -> None
      | e :: rest -> if e.ts < ts then Some (e.ts, e.value) else go rest
    in
    go entries

let version_count t = t.versions
let granule_count t = Granule.Map.cardinal t.index
