(** A segment controller (§4.2): owns the version chains of every granule
    in one data segment and answers version lookups for it.  Granules
    materialise on first touch with an initial bootstrap version. *)

type 'a t

val create : id:int -> init:(int -> 'a) -> 'a t
(** [init key] provides the bootstrap value of granule [key]. *)

val id : 'a t -> int

val set_trace : 'a t -> Hdd_obs.Trace.t option -> unit
(** Attach (or detach) a trace sink: {!gc} emits a [Seg_gc] record with
    the drop count whenever a collection removes at least one version. *)

val chain : 'a t -> int -> 'a Achain.t
(** Chain of granule [key]; created on demand. *)

val mem : 'a t -> int -> bool
(** Has the granule been touched (hence materialised)? *)

val granule_count : 'a t -> int

val keys : 'a t -> int list
(** Materialised keys, sorted. *)

val gc : 'a t -> before:Time.t -> int
(** Garbage-collect every chain; returns versions dropped. *)

val version_count : 'a t -> int
(** Live versions across all chains. *)

val max_chain_length : 'a t -> int
(** Longest chain in the segment (telemetry for the benchmark suite). *)
