type state = Pending | Committed

type 'a version = {
  ts : Time.t;
  writer : Txn.id;
  value : 'a;
  mutable state : state;
  mutable rts : Time.t;
}

(* Newest first.  This list representation is the reference
   implementation and the benchmark ablation partner; the store serves
   lookups from the array-backed {!Achain}, which binary-searches. *)
type 'a t = { mutable versions : 'a version list }

let create ~initial =
  { versions =
      [ { ts = Time.zero; writer = Txn.bootstrap.Txn.id; value = initial;
          state = Committed; rts = Time.zero } ] }

let install chain ~ts ~writer ~value =
  if ts <= Time.zero then invalid_arg "Chain.install: ts must be positive";
  let v = { ts; writer; value; state = Pending; rts = Time.zero } in
  let rec insert = function
    | [] -> [ v ]
    | hd :: _ as rest when hd.ts < ts -> v :: rest
    | hd :: _ when hd.ts = ts ->
      invalid_arg "Chain.install: duplicate version timestamp"
    | hd :: tl -> hd :: insert tl
  in
  chain.versions <- insert chain.versions;
  v

let commit chain ~ts =
  match List.find_opt (fun v -> v.ts = ts) chain.versions with
  | Some v when v.state = Pending -> v.state <- Committed
  | Some _ -> () (* already committed: commit is idempotent *)
  | None -> raise Not_found

let discard chain ~ts =
  match List.find_opt (fun v -> v.ts = ts) chain.versions with
  | None -> raise Not_found
  | Some v when v.state = Committed ->
    invalid_arg "Chain.discard: version is committed"
  | Some _ -> chain.versions <- List.filter (fun v -> v.ts <> ts) chain.versions

(* Handle-based variants: [install] returns the version, so a caller that
   kept it can flip or drop it without re-finding it by timestamp. *)

let commit_version v = v.state <- Committed

let discard_version chain v =
  if v.state = Committed then
    invalid_arg "Chain.discard: version is committed";
  chain.versions <- List.filter (fun w -> w != v) chain.versions

type 'a read_candidate = Version of 'a version | Wait_for of Txn.id

let committed_before chain ~ts =
  List.find_opt (fun v -> v.ts < ts && v.state = Committed) chain.versions

let candidate_before chain ~ts =
  match List.find_opt (fun v -> v.ts < ts) chain.versions with
  | None -> None
  | Some v ->
    Some (match v.state with
         | Committed -> Version v
         | Pending -> Wait_for v.writer)

let mark_read v ~at = if at > v.rts then v.rts <- at

let predecessor_rts chain ~ts =
  match List.find_opt (fun v -> v.ts < ts) chain.versions with
  | None -> None
  | Some v -> Some v.rts

let latest_committed chain =
  List.find_opt (fun v -> v.state = Committed) chain.versions

let versions chain = chain.versions

let length chain = List.length chain.versions

let gc chain ~before =
  (* Find the latest committed version below [before]; everything strictly
     older than it that is committed can go. *)
  match committed_before chain ~ts:before with
  | None -> 0
  | Some keep ->
    let kept, dropped =
      List.partition
        (fun v -> v.ts >= keep.ts || v.state = Pending)
        chain.versions
    in
    chain.versions <- kept;
    List.length dropped
