(** Array-backed version chains: the ablation partner of {!Chain}.

    Same semantics, different representation: versions live in a growable
    array sorted ascending by write timestamp, and the snapshot lookups
    ([committed_before], [candidate_before]) binary-search instead of
    walking a list.  The benchmark suite compares the two under short and
    long chains (DESIGN.md §6); {!Chain} remains the store's default
    because steady-state chains are short once garbage collection runs.

    The version record type is shared with {!Chain}. *)

type 'a t

val create : initial:'a -> 'a t
val install : 'a t -> ts:Time.t -> writer:Txn.id -> value:'a -> 'a Chain.version
val commit : 'a t -> ts:Time.t -> unit
val discard : 'a t -> ts:Time.t -> unit
val committed_before : 'a t -> ts:Time.t -> 'a Chain.version option
val candidate_before : 'a t -> ts:Time.t -> 'a Chain.read_candidate option
val predecessor_rts : 'a t -> ts:Time.t -> Time.t option
val latest_committed : 'a t -> 'a Chain.version option

val versions : 'a t -> 'a Chain.version list
(** Newest first, like {!Chain.versions}. *)

val length : 'a t -> int
val gc : 'a t -> before:Time.t -> int
