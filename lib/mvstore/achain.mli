(** Array-backed version chains: the store's lookup representation.

    Same semantics as {!Chain}, different representation: versions live
    in a growable array sorted ascending by write timestamp, and the
    snapshot lookups ([committed_before], [candidate_before])
    binary-search instead of walking a list.  This is what {!Segment} and
    {!Store} serve reads from; the list-backed {!Chain} survives as the
    reference implementation and benchmark ablation partner (the
    benchmark suite compares the two under short and long chains,
    DESIGN.md §6 and §11).

    The version record type is shared with {!Chain}. *)

type 'a t

val create : initial:'a -> 'a t
val install : 'a t -> ts:Time.t -> writer:Txn.id -> value:'a -> 'a Chain.version
val commit : 'a t -> ts:Time.t -> unit
val discard : 'a t -> ts:Time.t -> unit

val commit_version : 'a Chain.version -> unit
(** O(1) state flip through the handle; same as {!Chain.commit_version}. *)

val discard_version : 'a t -> 'a Chain.version -> unit
(** Remove a version through its handle (binary search by its timestamp,
    matched physically).  @raise Invalid_argument if committed;
    @raise Not_found if the handle is not in this chain. *)

val committed_before : 'a t -> ts:Time.t -> 'a Chain.version option
val candidate_before : 'a t -> ts:Time.t -> 'a Chain.read_candidate option
val predecessor_rts : 'a t -> ts:Time.t -> Time.t option
val latest_committed : 'a t -> 'a Chain.version option

val versions : 'a t -> 'a Chain.version list
(** Newest first, like {!Chain.versions}. *)

val length : 'a t -> int
val gc : 'a t -> before:Time.t -> int
