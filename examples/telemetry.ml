(* A four-level telemetry pipeline: the deepest hierarchy in the
   examples, exercising multi-hop activity links.

   D3 readings (highest): sensors append raw samples;
   D2 rollups: minute aggregation over readings;
   D1 alerts: threshold detection over rollups (and raw readings);
   D0 tickets: incident tickets opened from alerts.

   The pipeline runs as a concurrent simulated workload; afterwards the
   activity-link thresholds for a ticket-writer are printed hop by hop —
   the longest composition in the repository (three I_old hops). *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module Scheduler = Hdd_core.Scheduler
module Activity = Hdd_core.Activity
module Workload = Hdd_sim.Workload
module Runner = Hdd_sim.Runner
module Controller = Hdd_sim.Controller
module Adapters = Hdd_sim.Adapters
module Prng = Hdd_util.Prng
module Table = Hdd_util.Table

let granule segment key = Granule.make ~segment ~key

let partition =
  Partition.build_exn
    (Spec.make
       ~segments:[ "tickets"; "alerts"; "rollups"; "readings" ]
       ~types:
         [ Spec.txn_type ~name:"sample" ~writes:[ 3 ] ~reads:[];
           Spec.txn_type ~name:"rollup" ~writes:[ 2 ] ~reads:[ 2; 3 ];
           Spec.txn_type ~name:"alert" ~writes:[ 1 ] ~reads:[ 1; 2; 3 ];
           Spec.txn_type ~name:"ticket" ~writes:[ 0 ] ~reads:[ 0; 1 ] ])

let keys = 64

let workload =
  let key rng = Prng.int rng keys in
  { Workload.wl_name = "telemetry";
    partition;
    templates =
      [ { Workload.tpl_name = "sample"; kind = Controller.Update 3;
          weight = 0.4;
          gen =
            (fun rng ->
              [ Workload.Write (granule 3 (key rng), Prng.int rng 100) ]) };
        { Workload.tpl_name = "rollup"; kind = Controller.Update 2;
          weight = 0.25;
          gen =
            (fun rng ->
              let k = key rng in
              [ Workload.Read (granule 3 (key rng));
                Workload.Read (granule 3 (key rng));
                Workload.Read (granule 2 k);
                Workload.Write (granule 2 k, Prng.int rng 100) ]) };
        { Workload.tpl_name = "alert"; kind = Controller.Update 1;
          weight = 0.2;
          gen =
            (fun rng ->
              let k = key rng in
              [ Workload.Read (granule 2 (key rng));
                Workload.Read (granule 3 (key rng));
                Workload.Read (granule 1 k);
                Workload.Write (granule 1 k, Prng.int rng 2) ]) };
        { Workload.tpl_name = "ticket"; kind = Controller.Update 0;
          weight = 0.1;
          gen =
            (fun rng ->
              let k = key rng in
              [ Workload.Read (granule 1 (key rng));
                Workload.Read (granule 0 k);
                Workload.Write (granule 0 k, 1) ]) };
        { Workload.tpl_name = "dashboard"; kind = Controller.Read_only;
          weight = 0.05;
          gen =
            (fun rng ->
              [ Workload.Read (granule 0 (key rng));
                Workload.Read (granule 1 (key rng));
                Workload.Read (granule 2 (key rng));
                Workload.Read (granule 3 (key rng)) ]) } ];
    init = (fun _ -> 0) }

let () =
  let controller, sched, _clock =
    Adapters.hdd_detailed ~partition ~init:workload.Workload.init ()
  in
  let config =
    { Runner.default_config with Runner.mpl = 10; target_commits = 2000 }
  in
  let r = Runner.run config workload controller in
  Printf.printf
    "telemetry pipeline: %d commits, throughput %.3f, %d restarts\n"
    r.Runner.committed r.Runner.throughput r.Runner.restarts;
  let c = r.Runner.counters in
  Printf.printf
    "reads %d (registrations %d), writes %d, blocks %d, rejects %d\n"
    c.Controller.reads c.Controller.read_registrations c.Controller.writes
    c.Controller.blocks c.Controller.rejects;

  (* trace the longest activity link: a ticket-writer reading raw
     readings would compose three I_old hops (tickets -> alerts ->
     rollups -> readings); the declared pattern stops at alerts, so we
     print the full composition explicitly *)
  let ctx = Scheduler.activity_ctx sched in
  let m = 50 in
  let table =
    Table.create ~title:"activity-link composition from the ticket class"
      ~columns:[ "hop"; "class"; "threshold" ]
  in
  List.iteri
    (fun idx (cls, v) ->
      Table.add_row table
        [ string_of_int idx;
          Printf.sprintf "T%d (%s)" cls
            (Hdd_core.Spec.segment_name
               partition.Hdd_core.Partition.spec cls);
          string_of_int v ])
    (Activity.a_fn_trace ctx ~from_class:0 ~to_class:3 m);
  Table.print table;
  Printf.printf "wall releases so far: %d\n"
    (Hdd_core.Timewall.release_count (Scheduler.wall_manager sched))
