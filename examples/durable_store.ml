(* Durability: crash and recover a hierarchical database.

   A day of inventory activity is logged to a write-ahead log; the
   process then "crashes" with one transaction in flight.  Recovery
   replays the intact log prefix — committed transactions reappear, the
   in-flight one vanishes — and the database resumes on the recovered
   state with its clock past everything recovered.

   Run with: dune exec examples/durable_store.exe *)

module Durable = Hdd_storage.Durable
module Store = Hdd_mvstore.Store
module Outcome = Hdd_core.Outcome

let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> failwith "unexpected block"
  | Outcome.Rejected why -> failwith ("unexpected rejection: " ^ why)

let gr s k = Granule.make ~segment:s ~key:k

let partition =
  Hdd_core.Partition.build_exn
    (Hdd_core.Spec.make
       ~segments:[ "reorders"; "inventory"; "events" ]
       ~types:
         [ Hdd_core.Spec.txn_type ~name:"log-event" ~writes:[ 2 ] ~reads:[];
           Hdd_core.Spec.txn_type ~name:"recompute" ~writes:[ 1 ]
             ~reads:[ 1; 2 ];
           Hdd_core.Spec.txn_type ~name:"reorder" ~writes:[ 0 ]
             ~reads:[ 0; 1; 2 ] ])

let log_path = Filename.concat (Filename.get_temp_dir_name ()) "hdd_example.log"

let () =
  if Sys.file_exists log_path then Sys.remove log_path;
  (* --- session 1: normal operation, then a crash --- *)
  let db = Durable.create ~sync_on_commit:true ~path:log_path ~partition () in
  for event = 0 to 4 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 event) (10 * (event + 1)));
    Durable.commit db t
  done;
  let recompute = Durable.begin_update db ~class_id:1 in
  let total = ref 0 in
  for event = 0 to 4 do
    total := !total + ok (Durable.read db recompute (gr 2 event))
  done;
  ok (Durable.write db recompute (gr 1 0) !total);
  Durable.commit db recompute;
  Printf.printf "session 1: posted inventory level %d from 5 events\n" !total;
  (* a transaction caught by the crash *)
  let doomed = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db doomed (gr 2 99) 424242);
  Durable.close db;
  print_endline "session 1: CRASH with one event insert in flight";

  (* --- session 2: recovery --- *)
  let r = Durable.recover ~path:log_path ~segments:3 ~init:(fun _ -> 0) () in
  Printf.printf
    "recovery: %d committed, %d aborted, %d in-flight lost, log intact: %b\n"
    r.Durable.committed r.Durable.aborted r.Durable.lost_uncommitted
    r.Durable.log_intact;
  let level =
    match
      Store.committed_before r.Durable.store (gr 1 0)
        ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> failwith "inventory level lost!"
  in
  Printf.printf "recovery: inventory level %d survived\n" level;
  (match
     Store.committed_before r.Durable.store (gr 2 99)
       ~ts:(r.Durable.last_time + 1)
   with
  | Some v when v.Hdd_mvstore.Chain.ts > 0 ->
    failwith "in-flight write resurrected!"
  | _ -> print_endline "recovery: the in-flight insert correctly vanished");

  (* --- session 2 continues on the recovered state --- *)
  let db2 = Durable.of_recovery ~sync_on_commit:true ~path:log_path ~partition r in
  let reorder = Durable.begin_update db2 ~class_id:0 in
  let seen = ok (Durable.read db2 reorder (gr 1 0)) in
  ok (Durable.write db2 reorder (gr 0 0) (200 - seen));
  Durable.commit db2 reorder;
  Printf.printf "session 2: reorder decision from recovered level %d\n" seen;
  Durable.close db2;

  let r2 = Durable.recover ~path:log_path ~segments:3 ~init:(fun _ -> 0) () in
  Printf.printf "final log holds %d committed transactions\n"
    r2.Durable.committed;
  Sys.remove log_path
