(* The paper's §1.2.1 retail inventory application, end to end.

   Type 1 transactions log sales / sales-modification / merchandise-
   arrival events; type 2 transactions periodically recompute inventory
   levels from the events; type 3 transactions read events and levels to
   decide reorders.  The example first replays the motivating Figure 3
   timing interactively, then runs the full mixed workload through the
   simulator under HDD and the classical baselines, printing the
   comparison.

   Run with: dune exec examples/inventory.exe *)

module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store
module Workload = Hdd_sim.Workload
module Runner = Hdd_sim.Runner
module Harness = Hdd_sim.Harness
module Controller = Hdd_sim.Controller
module Table = Hdd_util.Table

let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> failwith "unexpected block"
  | Outcome.Rejected why -> failwith ("unexpected rejection: " ^ why)

let granule segment key = Granule.make ~segment ~key

(* --- part 1: the Figure 3 walkthrough --- *)

let walkthrough () =
  print_endline "--- Figure 3 walkthrough under HDD ---";
  let wl = Workload.inventory () in
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s = Scheduler.create ~log ~partition:wl.Workload.partition ~clock ~store () in
  let arrival = granule 2 0 and level = granule 1 0 and order = granule 0 0 in
  (* the reorder decision (type 3) begins and scans arrivals: no y yet *)
  let t3 = Scheduler.begin_update s ~class_id:0 in
  let y_seen = ok (Scheduler.read s t3 arrival) in
  Printf.printf "t3 scans arrivals, sees %d units\n" y_seen;
  (* the arrival of 40 units is logged (type 1) and committed *)
  let t1 = Scheduler.begin_update s ~class_id:2 in
  ok (Scheduler.write s t1 arrival 40);
  Scheduler.commit s t1;
  print_endline "t1 logs an arrival of 40 units and commits";
  (* the level recompute (type 2) sees the arrival and posts a new level *)
  let t2 = Scheduler.begin_update s ~class_id:1 in
  let arrived = ok (Scheduler.read s t2 arrival) in
  ok (Scheduler.write s t2 level arrived);
  Scheduler.commit s t2;
  Printf.printf "t2 recomputes the level from %d arrived units and commits\n"
    arrived;
  (* t3 now reads the level: protocol A serves the state consistent with
     its earlier scan *)
  let level_seen = ok (Scheduler.read s t3 level) in
  ok (Scheduler.write s t3 order (100 - level_seen));
  Scheduler.commit s t3;
  Printf.printf
    "t3 reads level %d (not %d!) and orders %d units; serializable: %b\n"
    level_seen arrived (100 - level_seen)
    (Certifier.serializable log);
  Printf.printf "read registrations left by the three transactions: %d\n\n"
    (Scheduler.metrics s).Scheduler.read_registrations

(* --- part 2: the mixed workload across protocols --- *)

let comparison () =
  print_endline "--- mixed inventory workload, 1000 commits, mpl 8 ---";
  let wl = Workload.inventory ~ro_weight:0.15 () in
  let config =
    { Runner.default_config with Runner.mpl = 8; target_commits = 1000 }
  in
  let table =
    Table.create ~title:"inventory workload"
      ~columns:
        [ "protocol"; "read regs"; "blocks"; "rejects"; "restarts";
          "throughput"; "serializable" ]
  in
  List.iter
    (fun spec ->
      let r, serializable = Harness.certified_run ~config spec wl in
      Table.add_row table
        [ r.Runner.controller;
          string_of_int r.Runner.counters.Controller.read_registrations;
          string_of_int r.Runner.counters.Controller.blocks;
          string_of_int r.Runner.counters.Controller.rejects;
          string_of_int r.Runner.restarts;
          Table.cell_float ~decimals:3 r.Runner.throughput;
          (if serializable then "yes" else "NO") ])
    Harness.all_controlled;
  Table.print table

let () =
  walkthrough ();
  comparison ()
