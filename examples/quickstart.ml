(* Quickstart: hierarchical database decomposition in five minutes.

   1. describe the segments and the update-transaction types;
   2. validate the partition (the DHG must be a transitive semi-tree);
   3. run concurrent update transactions under the HDD scheduler;
   4. run an ad-hoc read-only transaction against a time wall;
   5. certify the whole execution serializable.

   Run with: dune exec examples/quickstart.exe *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store

let granule segment key = Granule.make ~segment ~key

(* Unwrap an outcome we know must be granted in this single-threaded
   walkthrough. *)
let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> failwith "unexpected block"
  | Outcome.Rejected why -> failwith ("unexpected rejection: " ^ why)

let () =
  (* 1. transaction analysis: measurements arrive in D1; a summariser
     reads them and maintains aggregates in D0 *)
  let spec =
    Spec.make
      ~segments:[ "aggregates"; "measurements" ]
      ~types:
        [ Spec.txn_type ~name:"ingest" ~writes:[ 1 ] ~reads:[];
          Spec.txn_type ~name:"summarise" ~writes:[ 0 ] ~reads:[ 0; 1 ] ]
  in
  (* 2. validation *)
  let partition = Partition.build_exn spec in
  Printf.printf "partition accepted; critical arcs: %s\n"
    (String.concat ", "
       (List.map
          (fun (i, j) -> Printf.sprintf "D%d->D%d" i j)
          (Hdd_graph.Digraph.arcs partition.Partition.reduction)));

  (* 3. the scheduler over a fresh multi-version store *)
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:2 ~init:(fun _ -> 0) in
  let s = Scheduler.create ~log ~partition ~clock ~store () in

  (* an ingest transaction writes two measurements *)
  let ingest = Scheduler.begin_update s ~class_id:1 in
  ok (Scheduler.write s ingest (granule 1 0) 21);
  ok (Scheduler.write s ingest (granule 1 1) 21);
  Scheduler.commit s ingest;

  (* a summariser reads the measurements through Protocol A — no read
     locks, no read timestamps, never blocked — and posts the total *)
  let summarise = Scheduler.begin_update s ~class_id:0 in
  let m0 = ok (Scheduler.read s summarise (granule 1 0)) in
  let m1 = ok (Scheduler.read s summarise (granule 1 1)) in
  ok (Scheduler.write s summarise (granule 0 0) (m0 + m1));
  Scheduler.commit s summarise;
  Printf.printf "summariser posted %d + %d = %d\n" m0 m1 (m0 + m1);

  (* 4. an ad-hoc read-only transaction: served from the latest released
     time wall, also without registration *)
  (match Scheduler.release_wall s with
  | Ok _ -> ()
  | Error id -> Printf.printf "wall delayed by t%d\n" id);
  let audit = Scheduler.begin_read_only s in
  let total = ok (Scheduler.read s audit (granule 0 0)) in
  let raw0 = ok (Scheduler.read s audit (granule 1 0)) in
  let raw1 = ok (Scheduler.read s audit (granule 1 1)) in
  Scheduler.commit s audit;
  Printf.printf "audit sees total=%d, measurements=%d,%d (consistent: %b)\n"
    total raw0 raw1
    (total = raw0 + raw1 || total = 0);

  (* 5. the punchline *)
  let m = Scheduler.metrics s in
  Printf.printf "read registrations: %d (only the summariser's own-segment read would count)\n"
    m.Scheduler.read_registrations;
  Printf.printf "schedule certifies serializable: %b\n"
    (Certifier.serializable log)
