(* A bank ledger decomposed hierarchically.

   D2 journal (highest): tellers append deposits and withdrawals;
   D1 balances: a poster folds journal entries into account balances;
   D0 branch summaries: a summariser folds balances into per-branch
   totals.  Ad-hoc auditors read everything through time walls.

   The example runs a deterministic money-conservation scenario: every
   journal amount is drawn so that the grand total is known, posters and
   summarisers propagate it, and the audit must observe a *consistent
   cut* — a summary that matches the balances it was computed from —
   even while updates keep flowing.

   Run with: dune exec examples/bank_ledger.exe *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store
module Prng = Hdd_util.Prng

let accounts = 8
let entries_per_account = 4

let granule segment key = Granule.make ~segment ~key

let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> failwith "unexpected block"
  | Outcome.Rejected why -> failwith ("unexpected rejection: " ^ why)

let () =
  let spec =
    Spec.make
      ~segments:[ "branch-summary"; "balances"; "journal" ]
      ~types:
        [ Spec.txn_type ~name:"teller" ~writes:[ 2 ] ~reads:[];
          Spec.txn_type ~name:"poster" ~writes:[ 1 ] ~reads:[ 1; 2 ];
          Spec.txn_type ~name:"summariser" ~writes:[ 0 ] ~reads:[ 0; 1 ] ]
  in
  let partition = Partition.build_exn spec in
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s =
    Scheduler.create ~log ~wall_every_commits:4 ~partition ~clock ~store ()
  in
  let rng = Prng.create 2024 in

  (* tellers append journal entries: key = account * entries + slot *)
  let grand_total = ref 0 in
  for account = 0 to accounts - 1 do
    for slot = 0 to entries_per_account - 1 do
      let teller = Scheduler.begin_update s ~class_id:2 in
      let amount = 10 + Prng.int rng 90 in
      grand_total := !grand_total + amount;
      ok (Scheduler.write s teller
            (granule 2 ((account * entries_per_account) + slot))
            amount);
      Scheduler.commit s teller
    done
  done;
  Printf.printf "tellers journalled %d entries, grand total %d\n"
    (accounts * entries_per_account) !grand_total;

  (* posters fold the journal into balances, one account at a time; the
     journal reads travel through Protocol A *)
  for account = 0 to accounts - 1 do
    let poster = Scheduler.begin_update s ~class_id:1 in
    let balance = ref (ok (Scheduler.read s poster (granule 1 account))) in
    for slot = 0 to entries_per_account - 1 do
      balance :=
        !balance
        + ok (Scheduler.read s poster
                (granule 2 ((account * entries_per_account) + slot)))
    done;
    ok (Scheduler.write s poster (granule 1 account) !balance);
    Scheduler.commit s poster
  done;
  print_endline "posters folded the journal into account balances";

  (* one summariser per branch of 4 accounts *)
  let branches = accounts / 4 in
  for branch = 0 to branches - 1 do
    let sum = Scheduler.begin_update s ~class_id:0 in
    let total = ref 0 in
    for k = 0 to 3 do
      total := !total + ok (Scheduler.read s sum (granule 1 ((branch * 4) + k)))
    done;
    ok (Scheduler.write s sum (granule 0 branch) !total);
    Scheduler.commit s sum
  done;
  print_endline "summarisers posted branch totals";

  (* the audit: read-only, wall-based, no registration *)
  (match Scheduler.release_wall s with Ok _ -> () | Error _ -> ());
  let audit = Scheduler.begin_read_only s in
  let audit_summaries =
    List.init branches (fun b -> ok (Scheduler.read s audit (granule 0 b)))
  in
  let audit_balances =
    List.init accounts (fun a -> ok (Scheduler.read s audit (granule 1 a)))
  in
  Scheduler.commit s audit;
  let summary_total = List.fold_left ( + ) 0 audit_summaries in
  let balance_total = List.fold_left ( + ) 0 audit_balances in
  Printf.printf "audit: branch summaries total %d, balances total %d\n"
    summary_total balance_total;
  Printf.printf "money conserved through the hierarchy: %b\n"
    (balance_total = !grand_total && summary_total = balance_total);

  (* hosted read-only transaction along the balances-journal path *)
  let ro = Scheduler.begin_read_only_on_path s ~below:1 in
  let b0 = ok (Scheduler.read s ro (granule 1 0)) in
  let j0 = ok (Scheduler.read s ro (granule 2 0)) in
  Scheduler.commit s ro;
  Printf.printf "hosted reader: balance[0]=%d, journal[0]=%d\n" b0 j0;

  let m = Scheduler.metrics s in
  Printf.printf
    "metrics: %d commits, %d protocol-A reads, %d protocol-B reads, %d \
     protocol-C reads, %d registrations\n"
    m.Scheduler.commits m.Scheduler.reads_a m.Scheduler.reads_b
    m.Scheduler.reads_c m.Scheduler.read_registrations;
  Printf.printf "schedule certifies serializable: %b\n"
    (Certifier.serializable log)
