(* From an access trace to a running hierarchical database.

   The full §7.2 methodology end to end:

   1. record the access patterns of the application's transaction types
      over named data items (the trace);
   2. derive a candidate decomposition by clustering co-written items
      (§7.2.2) and legalize it by merging where the data hierarchy graph
      demands (§7.2.1);
   3. run the application on the derived partition under the HDD
      scheduler and certify the execution.

   The trace describes a small order-management system whose "fulfil"
   transaction co-writes two items (shipment and invoice records), and
   whose reporting transaction reads across — the kind of workload where
   the legal decomposition is not obvious by eye.

   Run with: dune exec examples/schema_design.exe *)

module Decompose = Hdd_core.Decompose
module Legalize = Hdd_core.Legalize
module Spec = Hdd_core.Spec
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store

let trace =
  [ { Decompose.tag = "place-order"; writes = [ "orders" ]; reads = [] };
    { Decompose.tag = "fulfil";
      writes = [ "shipments"; "invoices" ];
      reads = [ "orders" ] };
    { Decompose.tag = "pay";
      writes = [ "payments" ];
      reads = [ "invoices"; "payments" ] };
    { Decompose.tag = "report";
      writes = [ "reports" ];
      reads = [ "payments"; "shipments"; "invoices"; "reports" ] } ]

let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> failwith "unexpected block"
  | Outcome.Rejected why -> failwith ("unexpected rejection: " ^ why)

let () =
  (* 1-2. derive and legalize *)
  let d = Decompose.decompose trace in
  let legal = d.Decompose.legal in
  let spec = legal.Legalize.spec in
  Printf.printf "derived %d segments from %d items:\n"
    (Spec.segment_count spec)
    (List.length d.Decompose.items);
  List.iter
    (fun (item, seg) ->
      Printf.printf "  %-10s -> D%d (%s)\n" item seg (Spec.segment_name spec seg))
    d.Decompose.items;
  if legal.Legalize.merges <> [] then
    Printf.printf "legalization merged %d segment pairs\n"
      (List.length legal.Legalize.merges);

  (* 3. run the application on the derived partition *)
  let partition = legal.Legalize.partition in
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store =
    Store.create ~segments:(Spec.segment_count spec) ~init:(fun _ -> 0)
  in
  let s = Scheduler.create ~log ~partition ~clock ~store () in
  let seg item = Decompose.segment_of d item in
  let gr item key = Granule.make ~segment:(seg item) ~key in
  let class_of_type name =
    let ty =
      List.find (fun (ty : Spec.txn_type) -> ty.Spec.type_name = name)
        (Array.to_list spec.Spec.types)
    in
    List.hd ty.Spec.writes
  in

  (* a week of business *)
  for order = 0 to 9 do
    let place = Scheduler.begin_update s ~class_id:(class_of_type "place-order") in
    ok (Scheduler.write s place (gr "orders" order) (100 + order));
    Scheduler.commit s place;

    let fulfil = Scheduler.begin_update s ~class_id:(class_of_type "fulfil") in
    let amount = ok (Scheduler.read s fulfil (gr "orders" order)) in
    ok (Scheduler.write s fulfil (gr "shipments" order) order);
    ok (Scheduler.write s fulfil (gr "invoices" order) amount);
    Scheduler.commit s fulfil;

    let pay = Scheduler.begin_update s ~class_id:(class_of_type "pay") in
    let due = ok (Scheduler.read s pay (gr "invoices" order)) in
    ok (Scheduler.write s pay (gr "payments" order) due);
    Scheduler.commit s pay
  done;

  let report = Scheduler.begin_update s ~class_id:(class_of_type "report") in
  let total = ref 0 in
  for order = 0 to 9 do
    total := !total + ok (Scheduler.read s report (gr "payments" order))
  done;
  ok (Scheduler.write s report (gr "reports" 0) !total);
  Scheduler.commit s report;

  Printf.printf "reported revenue: %d (expected %d)\n" !total
    (let rec sum k acc = if k > 9 then acc else sum (k + 1) (acc + 100 + k) in
     sum 0 0);
  let m = Scheduler.metrics s in
  Printf.printf
    "%d commits; %d protocol-A reads, %d protocol-B reads, %d registrations\n"
    m.Scheduler.commits m.Scheduler.reads_a m.Scheduler.reads_b
    m.Scheduler.read_registrations;
  Printf.printf "certified serializable: %b\n" (Certifier.serializable log)
