(* The benchmark harness.

   Two halves, matching the deliverables in DESIGN.md:

   1. the experiment harness — regenerates every table/figure of the
      paper (E1..E13) and prints them with their claim checks;
   2. Bechamel microbenchmarks — one [Test.make] per experiment-relevant
      hot path / ablation (DESIGN.md §6): the activity-link composition
      and wall vector (E6/E9), the per-protocol read path behind the E10
      comparison, version-chain lookups at two chain lengths (storage
      ablation), the certifier, and the simulator's event queue.

   Run with [--quick] to skip the microbenchmarks, or pass experiment ids
   (e.g. [E3 E10]) to restrict part 1. *)

module Experiment = Hdd_experiments.Experiment
module Scheduler = Hdd_core.Scheduler
module Activity = Hdd_core.Activity
module Timewall = Hdd_core.Timewall
module Certifier = Hdd_core.Certifier
module Partition = Hdd_core.Partition
module Spec = Hdd_core.Spec
module B = Hdd_baselines
module Chain = Hdd_mvstore.Chain
module Store = Hdd_mvstore.Store
module EQ = Hdd_sim.Event_queue
module T = Hdd_txn

(* --- fixtures for the microbenchmarks ---

   All shared with the [hdd_cli bench] macro-benchmark via
   {!Hdd_benchkit.Fixtures}; the steady-state knobs (finished/active
   transactions per class, chain depth) live there. *)

module BK = Hdd_benchkit.Fixtures

let chain_partition depth = BK.chain_partition depth
let populated_ctx depth = BK.populated_ctx ~depth ()
let branch_partition branches = BK.branch_partition branches
let mv_chain n = BK.list_chain ~versions:n ()
let mv_achain n = BK.array_chain ~versions:n ()

let big_log steps =
  let log = T.Sched_log.create () in
  let granules = 64 in
  for i = 1 to steps do
    let g = T.Granule.make ~segment:0 ~key:(i mod granules) in
    if i mod 3 = 0 then
      T.Sched_log.log_write log ~txn:(i / 3) ~granule:g ~version:i
    else T.Sched_log.log_read log ~txn:(i / 3) ~granule:g ~version:0
  done;
  log

let hdd_fixture () =
  let partition = chain_partition 3 in
  let clock = T.Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s = Scheduler.create ~partition ~clock ~store () in
  let t = Scheduler.begin_update s ~class_id:0 in
  (s, t)

let bechamel_tests () =
  let open Bechamel in
  let ctx5, now5 = populated_ctx 5 in
  let ctx3, now3 = populated_ctx 3 in
  let branch_ctx =
    let p = branch_partition 3 in
    let registry = T.Registry.create ~classes:4 () in
    Activity.make_ctx p registry
  in
  let chain10 = mv_chain 10 in
  let chain200 = mv_chain 200 in
  let achain10 = mv_achain 10 in
  let achain200 = mv_achain 200 in
  let log1k = big_log 1000 in
  let hdd_s, hdd_t = hdd_fixture () in
  let g_top = T.Granule.make ~segment:2 ~key:0 in
  let g_own = T.Granule.make ~segment:0 ~key:0 in
  let s2pl =
    B.S2pl.create ~clock:(T.Time.Clock.create ()) ~init:(fun _ -> 0) ()
  in
  let s2pl_t = B.S2pl.begin_txn s2pl ~read_only:false in
  let tso =
    B.Tso.create ~clock:(T.Time.Clock.create ()) ~init:(fun _ -> 0) ()
  in
  let tso_t = B.Tso.begin_txn tso in
  let mvto =
    B.Mvto.create ~clock:(T.Time.Clock.create ()) ~segments:1
      ~init:(fun _ -> 0) ()
  in
  let mvto_t = B.Mvto.begin_txn mvto in
  [ Test.make ~name:"E6/activity: A over a 3-class chain"
      (Staged.stage (fun () ->
           Activity.a_fn ctx3 ~from_class:0 ~to_class:2 (now3 / 2)));
    Test.make ~name:"E6/activity: A over a 5-class chain"
      (Staged.stage (fun () ->
           Activity.a_fn ctx5 ~from_class:0 ~to_class:4 (now5 / 2)));
    Test.make ~name:"E9/wall: E-vector on a 3-branch tree"
      (Staged.stage (fun () -> Timewall.compute branch_ctx ~m:100));
    Test.make ~name:"mvstore: snapshot read, 10-version chain"
      (Staged.stage (fun () -> Chain.committed_before chain10 ~ts:15));
    Test.make ~name:"mvstore: snapshot read, 200-version chain"
      (Staged.stage (fun () -> Chain.committed_before chain200 ~ts:299));
    Test.make ~name:"mvstore/ablation: array chain, 10 versions"
      (Staged.stage (fun () ->
           Hdd_mvstore.Achain.committed_before achain10 ~ts:15));
    Test.make ~name:"mvstore/ablation: array chain, 200 versions"
      (Staged.stage (fun () ->
           Hdd_mvstore.Achain.committed_before achain200 ~ts:299));
    Test.make ~name:"E10/read: HDD protocol A (cross-class)"
      (Staged.stage (fun () -> Scheduler.read hdd_s hdd_t g_top));
    Test.make ~name:"E10/read: HDD protocol B (root segment)"
      (Staged.stage (fun () -> Scheduler.read hdd_s hdd_t g_own));
    Test.make ~name:"E10/read: 2PL (lock + registration)"
      (Staged.stage (fun () -> B.S2pl.read s2pl s2pl_t g_own));
    Test.make ~name:"E10/read: TSO (stamp + registration)"
      (Staged.stage (fun () -> B.Tso.read tso tso_t g_own));
    Test.make ~name:"E10/read: MVTO (version + registration)"
      (Staged.stage (fun () -> B.Mvto.read mvto mvto_t g_own));
    Test.make ~name:"certifier: MVSG over a 1000-step log"
      (Staged.stage (fun () -> Certifier.serializable log1k));
    Test.make
      ~name:"sim: event queue push+pop"
      (let q = EQ.create () in
       Staged.stage (fun () ->
           EQ.push q ~time:1.0 0;
           EQ.pop q));
    Test.make ~name:"sim: Retry.backoff (jittered exponential)"
      (let rng = Hdd_util.Prng.create 7 in
       Staged.stage (fun () ->
           Hdd_sim.Retry.backoff Hdd_sim.Retry.default rng ~attempt:5));
    Test.make ~name:"storage: fault-sink append (armed, no fault)"
      (let path =
         Filename.concat (Filename.get_temp_dir_name ()) "hdd_bench_sink.log"
       in
       let sink =
         Hdd_storage.Fault.apply
           (Hdd_storage.Fault.plan
              [ Hdd_storage.Fault.Bit_flip { byte = max_int; bit = 0 } ])
           (Hdd_storage.Fault.file_sink ~path ())
       in
       let frame =
         Hdd_storage.Codec.encode
           (Hdd_storage.Codec.Commit { txn = 1; at = 1 })
       in
       Staged.stage (fun () -> sink.Hdd_storage.Fault.append frame));
    Test.make ~name:"storage: WAL append (buffered)"
      (let path =
         Filename.concat (Filename.get_temp_dir_name ()) "hdd_bench.log"
       in
       let wal = Hdd_storage.Wal.create ~path () in
       let record =
         Hdd_storage.Codec.Write
           { txn = 1; granule = T.Granule.make ~segment:0 ~key:0; ts = 1;
             value = 42 }
       in
       Staged.stage (fun () -> Hdd_storage.Wal.append wal record));
    Test.make ~name:"storage: recovery replay, 3k-record log"
      (let path =
         Filename.concat (Filename.get_temp_dir_name ()) "hdd_bench_rec.log"
       in
       (if Sys.file_exists path then Sys.remove path);
       let wal = Hdd_storage.Wal.create ~path () in
       for i = 1 to 1000 do
         Hdd_storage.Wal.append wal
           (Hdd_storage.Codec.Begin { txn = i; class_id = 0; init = i });
         Hdd_storage.Wal.append wal
           (Hdd_storage.Codec.Write
              { txn = i; granule = T.Granule.make ~segment:0 ~key:(i mod 64);
                ts = i; value = i });
         Hdd_storage.Wal.append wal
           (Hdd_storage.Codec.Commit { txn = i; at = i })
       done;
       Hdd_storage.Wal.close wal;
       Staged.stage (fun () ->
           Hdd_storage.Durable.recover ~path ~segments:1 ~init:(fun _ -> 0))) ]

let run_bechamel () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let tests = bechamel_tests () in
  let table =
    Hdd_util.Table.create ~title:"Microbenchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      Hashtbl.iter
        (fun name raw ->
          let estimate = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates estimate with
            | Some [ e ] -> Printf.sprintf "%.1f" e
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square estimate with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Hdd_util.Table.add_row table [ name; ns; r2 ])
        results)
    tests;
  Hdd_util.Table.print table

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let ids = List.filter (fun a -> a <> "--quick") args in
  let outcomes =
    match ids with
    | [] -> Experiment.run_all ()
    | ids -> List.map Experiment.run ids
  in
  List.iter Experiment.print outcomes;
  let failed = List.filter (fun o -> not (Experiment.passed o)) outcomes in
  Printf.printf "\n%d/%d experiments passed all claim checks\n"
    (List.length outcomes - List.length failed)
    (List.length outcomes);
  List.iter
    (fun (o : Experiment.outcome) ->
      Printf.printf "  FAILED: %s\n" o.Experiment.id)
    failed;
  if not quick then begin
    print_newline ();
    run_bechamel ()
  end;
  if failed <> [] then exit 1
