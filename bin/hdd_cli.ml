(* hdd_cli — command-line front end.

   Subcommands:
     validate     parse a partition description and check TST-hierarchy
     dot          emit the DHG of a built-in partition as Graphviz
     simulate     run one workload under one protocol
     compare      run one workload under every protocol
     experiments  run the paper-reproduction experiments (E1..E13)

   Partition descriptions for `validate` use one line per transaction
   type:   name : writes SEG[,SEG...] reads [SEG[,SEG...]]
   Segments are declared implicitly by first use. *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module Workload = Hdd_sim.Workload
module Runner = Hdd_sim.Runner
module Harness = Hdd_sim.Harness
module Controller = Hdd_sim.Controller
module Experiment = Hdd_experiments.Experiment
module Table = Hdd_util.Table

open Cmdliner

(* --- partition description parsing --- *)

let parse_spec_lines lines =
  let segments : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let seg name =
    match Hashtbl.find_opt segments name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length segments in
      Hashtbl.add segments name i;
      order := name :: !order;
      i
  in
  let parse_segs s =
    if String.trim s = "" then []
    else
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
      |> List.map seg
  in
  let types =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then None
        else
          match String.index_opt line ':' with
          | None -> failwith (Printf.sprintf "missing ':' in %S" line)
          | Some i ->
            let name = String.trim (String.sub line 0 i) in
            let rest =
              String.sub line (i + 1) (String.length line - i - 1)
            in
            let writes, reads =
              match
                Scanf.sscanf_opt rest " writes %s@ reads %s@!"
                  (fun w r -> (w, r))
              with
              | Some (w, r) -> (w, r)
              | None -> (
                match
                  Scanf.sscanf_opt rest " writes %s@!" (fun w -> w)
                with
                | Some w -> (w, "")
                | None ->
                  failwith
                    (Printf.sprintf "cannot parse type description %S" line))
            in
            Some (Spec.txn_type ~name ~writes:(parse_segs writes)
                    ~reads:(parse_segs reads)))
      lines
  in
  Spec.make ~segments:(List.rev !order) ~types

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* --- built-in workloads --- *)

let workload_of_name name =
  match name with
  | "inventory" -> Workload.inventory ()
  | "tree" -> Workload.tree ()
  | "chain3" -> Workload.chain ~depth:3 ()
  | "chain5" -> Workload.chain ~depth:5 ()
  | _ -> (
    match Scanf.sscanf_opt name "random:%d" Fun.id with
    | Some seed -> Workload.random_hierarchy ~seed ()
    | None ->
      failwith
        ("unknown workload: " ^ name
       ^ " (try inventory, tree, chain3, chain5, random:<seed>)"))

let spec_of_name = function
  | "HDD" | "hdd" -> Harness.Hdd
  | "2PL" | "2pl" -> Harness.S2pl
  | "2PL-noRL" | "2pl-norl" -> Harness.S2plNoRl
  | "TSO" | "tso" -> Harness.Tso
  | "TSO-noRTS" | "tso-norts" -> Harness.TsoNoRts
  | "MVTO" | "mvto" -> Harness.Mvto
  | "MV2PL" | "mv2pl" -> Harness.Mv2pl
  | "SDD-1" | "sdd1" -> Harness.Sdd1
  | "PRUDENT" | "prudent" -> Harness.Prudent
  | "NoCC" | "nocc" -> Harness.Nocc
  | name -> failwith ("unknown protocol: " ^ name)

(* --- commands --- *)

let validate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Partition description file.")
  in
  let run file =
    let spec = parse_spec_lines (read_lines file) in
    match Partition.build spec with
    | Ok p ->
      Printf.printf "TST-hierarchical: yes\n";
      Printf.printf "segments: %d, critical arcs: %s\n"
        (Partition.segment_count p)
        (String.concat ", "
           (List.map
              (fun (i, j) -> Printf.sprintf "D%d->D%d" i j)
              (Hdd_graph.Digraph.arcs p.Partition.reduction)));
      Printf.printf "lowest classes: %s\n"
        (String.concat ", "
           (List.map string_of_int (Partition.lowest_classes p)))
    | Error e ->
      Printf.printf "REJECTED: %s\n" (Partition.error_to_string e);
      exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate a partition description")
    Term.(const run $ file)

let legalize_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Partition description file.")
  in
  let run file =
    let spec = parse_spec_lines (read_lines file) in
    let r = Hdd_core.Legalize.legalize spec in
    if r.Hdd_core.Legalize.merges = [] then
      print_endline "already TST-hierarchical; nothing to merge"
    else begin
      List.iter
        (fun (a, b) ->
          Printf.printf "merge %s with %s\n" (Spec.segment_name spec a)
            (Spec.segment_name spec b))
        r.Hdd_core.Legalize.merges;
      Printf.printf "legal decomposition (%d segments):\n"
        (Spec.segment_count r.Hdd_core.Legalize.spec);
      Array.iteri
        (fun i m ->
          Printf.printf "  %s -> %s\n" (Spec.segment_name spec i)
            (Spec.segment_name r.Hdd_core.Legalize.spec m))
        r.Hdd_core.Legalize.segment_map
    end
  in
  Cmd.v
    (Cmd.info "legalize"
       ~doc:"Merge segments until a partition is TST-hierarchical (§7.2.1)")
    Term.(const run $ file)

let decompose_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Access-trace file: one line per transaction type, \
                 `name : writes ITEM[,ITEM...] reads [ITEM[,ITEM...]]`.")
  in
  let run file =
    let trace =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then None
          else
            match String.index_opt line ':' with
            | None -> failwith (Printf.sprintf "missing ':' in %S" line)
            | Some i ->
              let tag = String.trim (String.sub line 0 i) in
              let rest = String.sub line (i + 1) (String.length line - i - 1) in
              let items s =
                if String.trim s = "" then []
                else
                  String.split_on_char ',' s
                  |> List.map String.trim
                  |> List.filter (fun x -> x <> "")
              in
              let writes, reads =
                match
                  Scanf.sscanf_opt rest " writes %s@ reads %s@!" (fun w r ->
                      (w, r))
                with
                | Some (w, r) -> (items w, items r)
                | None -> (
                  match Scanf.sscanf_opt rest " writes %s@!" Fun.id with
                  | Some w -> (items w, [])
                  | None -> failwith (Printf.sprintf "cannot parse %S" line))
              in
              Some { Hdd_core.Decompose.tag; writes; reads })
        (read_lines file)
    in
    let d = Hdd_core.Decompose.decompose trace in
    let spec = d.Hdd_core.Decompose.legal.Hdd_core.Legalize.spec in
    Printf.printf "legal decomposition with %d segments:
"
      (Spec.segment_count spec);
    List.iter
      (fun (item, seg) ->
        Printf.printf "  %-20s -> D%d (%s)
" item seg
          (Spec.segment_name spec seg))
      d.Hdd_core.Decompose.items
  in
  Cmd.v
    (Cmd.info "decompose"
       ~doc:"Derive a legal decomposition from an access trace (§7.2.2)")
    Term.(const run $ file)

let dot_cmd =
  let workload =
    Arg.(value & pos 0 string "inventory" & info [] ~docv:"WORKLOAD"
           ~doc:"Built-in workload whose DHG to print.")
  in
  let run name =
    let wl = workload_of_name name in
    print_string (Partition.to_dot wl.Workload.partition)
  in
  Cmd.v (Cmd.info "dot" ~doc:"Emit a workload's data hierarchy graph as DOT")
    Term.(const run $ workload)

let sim_args =
  let workload =
    Arg.(value & opt string "inventory" & info [ "w"; "workload" ]
           ~docv:"NAME" ~doc:"Workload (inventory, tree, chain3, chain5).")
  in
  let commits =
    Arg.(value & opt int 2000 & info [ "n"; "commits" ] ~docv:"N"
           ~doc:"Committed transactions to run.")
  in
  let mpl =
    Arg.(value & opt int 8 & info [ "mpl" ] ~docv:"M"
           ~doc:"Multiprogramming level.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  (workload, commits, mpl, seed)

let config_of ~commits ~mpl ~seed =
  { Runner.default_config with
    Runner.mpl;
    target_commits = commits;
    seed }

let print_results results =
  let table =
    Table.create ~title:"simulation results"
      ~columns:
        [ "protocol"; "commits"; "restarts"; "deadlocks"; "gave up";
          "backoff"; "read regs"; "blocks"; "rejects"; "throughput";
          "p95 resp" ]
  in
  List.iter
    (fun (r : Runner.result) ->
      Table.add_row table
        [ r.Runner.controller;
          string_of_int r.Runner.committed;
          string_of_int r.Runner.restarts;
          string_of_int r.Runner.deadlocks;
          string_of_int r.Runner.gave_up;
          Table.cell_float ~decimals:1 r.Runner.total_backoff;
          string_of_int r.Runner.counters.Controller.read_registrations;
          string_of_int r.Runner.counters.Controller.blocks;
          string_of_int r.Runner.counters.Controller.rejects;
          Table.cell_float ~decimals:3 r.Runner.throughput;
          Table.cell_float r.Runner.p95_response ])
    results;
  Table.print table

let simulate_cmd =
  let workload, commits, mpl, seed = sim_args in
  let protocol =
    Arg.(value & opt string "HDD" & info [ "p"; "protocol" ] ~docv:"P"
           ~doc:"Protocol (HDD, 2PL, TSO, MVTO, MV2PL, SDD-1, NoCC).")
  in
  let certify =
    Arg.(value & flag & info [ "certify" ]
           ~doc:"Log the schedule and certify serializability.")
  in
  let run wname commits mpl seed pname certify =
    let wl = workload_of_name wname in
    let spec = spec_of_name pname in
    let config = config_of ~commits ~mpl ~seed in
    if certify then begin
      let r, serializable = Harness.certified_run ~config spec wl in
      print_results [ r ];
      Printf.printf "serializable: %b\n" serializable;
      if not serializable then exit 1
    end
    else print_results [ Runner.run config wl (Harness.make spec wl) ]
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run one workload under one protocol")
    Term.(const run $ workload $ commits $ mpl $ seed $ protocol $ certify)

let compare_cmd =
  let workload, commits, mpl, seed = sim_args in
  let run wname commits mpl seed =
    let wl = workload_of_name wname in
    let config = config_of ~commits ~mpl ~seed in
    print_results (Harness.compare_protocols ~config wl)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run one workload under every protocol")
    Term.(const run $ workload $ commits $ mpl $ seed)

let recover_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG"
           ~doc:"Write-ahead log file to inspect.")
  in
  let segments =
    Arg.(value & opt int 8 & info [ "segments" ] ~docv:"N"
           ~doc:"Segment count of the store to rebuild.")
  in
  let run file segments =
    let r =
      Hdd_storage.Durable.recover ~path:file ~segments ~init:(fun _ -> 0) ()
    in
    (match r.Hdd_storage.Durable.from_checkpoint with
    | Some m ->
      Printf.printf "from checkpoint: seq %d (log offset %d)\n"
        m.Hdd_storage.Checkpoint.seq m.Hdd_storage.Checkpoint.log_offset
    | None -> print_string "from checkpoint: none (full replay)\n");
    Printf.printf
      "log intact: %b
committed: %d
aborted: %d
in-flight lost: %d
last timestamp: %d
live versions: %d
"
      r.Hdd_storage.Durable.log_intact r.Hdd_storage.Durable.committed
      r.Hdd_storage.Durable.aborted r.Hdd_storage.Durable.lost_uncommitted
      r.Hdd_storage.Durable.last_time
      (Hdd_mvstore.Store.version_count r.Hdd_storage.Durable.store);
    if not r.Hdd_storage.Durable.log_intact then exit 2
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Replay a write-ahead log and report the recovered state")
    Term.(const run $ file $ segments)

let torture_cmd =
  let seeds =
    Arg.(value & opt int 50 & info [ "n"; "seeds" ] ~docv:"N"
           ~doc:"Crash/recover cycles to run (one per seed).")
  in
  let first_seed =
    Arg.(value & opt int 0 & info [ "first-seed" ] ~docv:"S"
           ~doc:"Seed of the first cycle.")
  in
  let workload =
    Arg.(value & opt string "inventory" & info [ "w"; "workload" ]
           ~docv:"NAME" ~doc:"Workload whose partition to torture.")
  in
  let path =
    Arg.(value & opt string "" & info [ "log" ] ~docv:"FILE"
           ~doc:"Log file to hammer (default: a file under the system \
                 temporary directory).")
  in
  let monitors =
    Arg.(value & flag & info [ "monitors" ]
           ~doc:"Attach the runtime invariant monitors to every phase and \
                 count what they catch as violations.")
  in
  let run seeds first_seed wname path monitors =
    let wl = workload_of_name wname in
    let path =
      if path <> "" then path
      else
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "hdd_torture_%d.log" (Unix.getpid ()))
    in
    let report =
      Hdd_storage.Torture.run ~monitors ~first_seed
        ~partition:wl.Workload.partition ~path ~seeds ()
    in
    Format.printf "%a@." Hdd_storage.Torture.pp_report report;
    if report.Hdd_storage.Torture.violating <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:"Seeded crash/recover torture of the durable store: inject \
             crashes, torn writes and corruption, then verify the \
             recovery invariants")
    Term.(const run $ seeds $ first_seed $ workload $ path $ monitors)

let explore_cmd =
  let module Explore = Hdd_check.Explore in
  let module Scenarios = Hdd_check.Scenarios in
  let module Shrink = Hdd_check.Shrink in
  let scenario =
    Arg.(value & opt string "all" & info [ "s"; "scenario" ] ~docv:"NAME"
           ~doc:"Scenario (fig1, fig34, wall, adhoc) or 'all'.")
  in
  let system =
    Arg.(value & opt string "all" & info [ "p"; "system" ] ~docv:"SYS"
           ~doc:"System (HDD, 2PL, 2PL-noRL, TSO, TSO-noRTS, MVTO, MV2PL, \
                 SDD-1, NoCC) or 'all'.")
  in
  let exhaustive =
    Arg.(value & flag & info [ "exhaustive" ]
           ~doc:"Enumerate every interleaving literally instead of one \
                 representative per Mazurkiewicz trace.")
  in
  let max_schedules =
    Arg.(value & opt int 500_000 & info [ "max-schedules" ] ~docv:"N"
           ~doc:"Stop after N complete interleavings.")
  in
  let shrink =
    Arg.(value & flag & info [ "shrink" ]
           ~doc:"Minimise and print the first anomalous trial of each \
                 system that shows one.")
  in
  let run sc_name sys_name exhaustive max_schedules do_shrink =
    let scenarios =
      if sc_name = "all" then Scenarios.all else [ Scenarios.find sc_name ]
    in
    let systems =
      if sys_name = "all" then Explore.all_systems
      else [ Explore.system sys_name ]
    in
    let table =
      Table.create ~title:"schedule-space exploration"
        ~columns:
          [ "scenario"; "system"; "schedules"; "pruned"; "serializable";
            "anomalies"; "deadlocks"; "rejections"; "verdict" ]
    in
    let failures = ref 0 in
    List.iter
      (fun (sc : Scenarios.t) ->
        List.iter
          (fun (sys : Explore.system) ->
            let s =
              Explore.explore ~prune:(not exhaustive) ~max_schedules sys
                sc.Scenarios.workload
            in
            let expected =
              List.mem sys.Explore.sys_name sc.Scenarios.expect_anomaly
            in
            let ok =
              (not s.Explore.capped)
              && (s.Explore.anomalies > 0) = expected
            in
            if not ok then incr failures;
            Table.add_row table
              [ sc.Scenarios.sc_name; s.Explore.sum_system;
                string_of_int s.Explore.schedules;
                string_of_int s.Explore.pruned;
                string_of_int s.Explore.serializable;
                string_of_int s.Explore.anomalies;
                string_of_int s.Explore.deadlocks;
                string_of_int s.Explore.rejections;
                (if s.Explore.capped then "CAPPED"
                 else if ok then "ok"
                 else "UNEXPECTED") ];
            if do_shrink && s.Explore.anomalies > 0 then
              match s.Explore.examples with
              | [] -> ()
              | trial :: _ -> (
                match
                  Shrink.minimize sys sc.Scenarios.workload
                    trial.Explore.t_schedule
                with
                | Some r ->
                  Format.printf "@[<v>%s on %s:@,%a@]@.@."
                    sys.Explore.sys_name sc.Scenarios.sc_name
                    Shrink.pp_report r
                | None -> ()))
          systems)
      scenarios;
    Table.print table;
    if !failures > 0 then begin
      Printf.printf "%d scenario/system pairs off expectation\n" !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Enumerate the schedule space of the anomaly scenarios and \
             certify every interleaving under each system")
    Term.(const run $ scenario $ system $ exhaustive $ max_schedules $ shrink)

let bench_cmd =
  let module J = Hdd_benchkit.Jsonlite in
  let module Macro = Hdd_benchkit.Macro in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Shrink fixtures and the closed loop (~10x) for per-push \
                 CI.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ]
           ~docv:"FILE"
           ~doc:"Where to write the JSON report (default \
                 BENCH_hot_paths.json, or BENCH_parallel.json with \
                 $(b,--parallel)).")
  in
  let parallel =
    Arg.(value & flag & info [ "parallel" ]
           ~doc:"Run the multicore runtime scaling benchmark instead: \
                 closed-loop workers at 1, 2, 4 (and all-cores) domains \
                 on a chain hierarchy, reporting throughput, Protocol A \
                 read rate, commit-latency quantiles and wall lag \
                 (BENCH_parallel.json).")
  in
  let durable =
    Arg.(value & flag & info [ "durable" ]
           ~doc:"Run the durable-engine benchmark instead: group-commit \
                 throughput, fsyncs/commit and ack latency over the \
                 max_batch x max_delay knob grid, plus recovery time \
                 against history length and checkpoint interval \
                 (BENCH_durable.json).  Structural gates (fsync \
                 reduction, recovery flatness) always apply; \
                 $(b,--baseline) additionally gates throughput.")
  in
  let adapt =
    Arg.(value & flag & info [ "adapt" ]
           ~doc:"Run the live-repartition benchmark instead: the same \
                 chain workload measured steady, with the coordinator \
                 applying whole-map ownership rotations behind park \
                 barriers (live), and with a stop-the-world teardown and \
                 rebuild at every would-be barrier (BENCH_adapt.json).  \
                 Structural gates always apply (the live run \
                 repartitioned, every mode committed, live retention at \
                 or above the floor); $(b,--baseline) additionally gates \
                 live throughput retention against the committed report.")
  in
  let shard =
    Arg.(value & flag & info [ "shard" ]
           ~doc:"Run the cross-shard read benchmark instead: one domain \
                 per shard over the loopback hub, every transaction \
                 reading a segment another shard owns — HDD's \
                 publication-composed thresholds against an in-tree \
                 2PC-read (lock/read/unlock) baseline \
                 (BENCH_shard.json).  Structural gates always apply \
                 (both sides commit, speedup > 1); $(b,--baseline) \
                 additionally gates the speedup.")
  in
  let hybrid =
    Arg.(value & flag & info [ "hybrid" ]
           ~doc:"Run the hybrid-CC workload benchmark instead: the \
                 TPC-C-shaped suite at low and high contention, closed \
                 loop, across pure HDD, the adaptive hybrid and MV2PL, \
                 plus an open-loop million-user SLO section \
                 (BENCH_hybrid.json).  Structural gates always apply \
                 (every cell committed, the hybrid escalated at the \
                 high-contention point, hybrid/HDD throughput at or \
                 above 0.9x low and 1.3x high, SLO quantiles finite and \
                 ordered); $(b,--baseline) additionally gates the \
                 high-contention ratio.")
  in
  let baseline =
    Arg.(value & opt (some file) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Committed baseline report to gate against.")
  in
  let max_regression =
    Arg.(value & opt float 0.20 & info [ "max-regression" ] ~docv:"FRAC"
           ~doc:"Fail when a gated throughput metric falls this fraction \
                 below the baseline.")
  in
  let workers =
    Arg.(value & opt (some (list int)) None & info [ "workers" ]
           ~docv:"W,W,..."
           ~doc:"With $(b,--parallel): the worker-domain counts to \
                 measure (default 1,2,4,8, extended with all-cores when \
                 that exceeds 8).  The nightly 16-domain job passes \
                 1,2,4,8,16.")
  in
  let publish_every =
    Arg.(value & opt (some int) None & info [ "publish-every" ] ~docv:"K"
           ~doc:"Publication batch: publish activity once per K finished \
                 transactions.  With $(b,--parallel) it sets the batch \
                 of the scaling points (the K-sweep still runs); with \
                 $(b,--shard) it sets the batched HDD side compared \
                 against per-commit publication.")
  in
  let obs_gate =
    Arg.(value & opt (some float) None & info [ "obs-gate" ] ~docv:"FRAC"
           ~doc:"Instead of the full report, measure the closed-loop \
                 throughput cost of the always-on observability profile \
                 (metrics registry wired, trace hooks compiled in but the \
                 ring disabled) versus no trace attached at all, and fail \
                 when the fraction lost exceeds FRAC (the nightly gate \
                 uses 0.03).  The cost of tracing fully on (enabled ring \
                 + metrics bridge) is measured and reported alongside, \
                 ungated — that is the diagnostic mode, not the always-on \
                 one.")
  in
  let num report keys =
    match Option.bind (J.path keys report) J.number with
    | Some f -> f
    | None -> nan
  in
  let run quick out baseline max_regression obs_gate parallel durable adapt
      shard workers publish_every hybrid =
    if hybrid then begin
      let module Wb = Hdd_workload.Wbench in
      let out = Option.value out ~default:"BENCH_hybrid.json" in
      let r = Wb.run ~quick () in
      J.to_file out (Wb.to_json r);
      Printf.printf "wrote %s\n" out;
      Format.printf "%a@?" Wb.pp r;
      (match Wb.gates r with
      | [] -> ()
      | problems ->
        List.iter
          (fun p -> Printf.printf "HYBRID GATE FAILED: %s\n" p)
          problems;
        exit 1);
      match baseline with
      | None -> ()
      | Some path ->
        let base = J.of_file path in
        let was =
          match Option.bind (J.path [ "ratio_high" ] base) J.number with
          | Some f -> f
          | None -> nan
        in
        let now = r.Wb.w_ratio_high in
        if was > 0. && now < was *. (1. -. max_regression) then begin
          Printf.printf "REGRESSION ratio_high: %.2f -> %.2f (-%.0f%%)\n"
            was now
            (100. *. (1. -. (now /. was)));
          exit 1
        end
        else
          Printf.printf "no hybrid regression beyond %.0f%% against %s\n"
            (100. *. max_regression) path
    end
    else if adapt then begin
      let module Ab = Hdd_adapt.Adaptbench in
      let out = Option.value out ~default:"BENCH_adapt.json" in
      let seconds = if quick then 0.25 else 1.0 in
      let rotate_every_s = if quick then 0.05 else 0.125 in
      let r = Ab.run ~seconds ~rotate_every_s () in
      J.to_file out (Ab.to_json r);
      Printf.printf "wrote %s\n" out;
      Format.printf "%a@?" Ab.pp r;
      (match Ab.gates r with
      | [] -> ()
      | problems ->
        List.iter
          (fun p -> Printf.printf "ADAPT GATE FAILED: %s\n" p)
          problems;
        exit 1);
      match baseline with
      | None -> ()
      | Some path ->
        let base = J.of_file path in
        let was =
          match Option.bind (J.path [ "retention_live" ] base) J.number with
          | Some f -> f
          | None -> nan
        in
        let now = r.Ab.a_retention_live in
        if was > 0. && now < was *. (1. -. max_regression) then begin
          Printf.printf
            "REGRESSION retention_live: %.2f -> %.2f (-%.0f%%)\n" was now
            (100. *. (1. -. (now /. was)));
          exit 1
        end
        else
          Printf.printf "no adapt regression beyond %.0f%% against %s\n"
            (100. *. max_regression) path
    end
    else if shard then begin
      let module Sb = Hdd_shard.Shardbench in
      let out = Option.value out ~default:"BENCH_shard.json" in
      let seconds = if quick then 0.25 else 1.0 in
      let r = Sb.run ~seconds ?publish_every () in
      J.to_file out (Sb.to_json r);
      Printf.printf "wrote %s\n" out;
      Format.printf "%a@?" Sb.pp r;
      (match Sb.gates r with
      | [] -> ()
      | problems ->
        List.iter
          (fun p -> Printf.printf "SHARD GATE FAILED: %s\n" p)
          problems;
        exit 1);
      match baseline with
      | None -> ()
      | Some path ->
        let base = J.of_file path in
        let was =
          match Option.bind (J.path [ "speedup" ] base) J.number with
          | Some f -> f
          | None -> nan
        in
        let now = r.Sb.r_speedup in
        if was > 0. && now < was *. (1. -. max_regression) then begin
          Printf.printf "REGRESSION speedup: %.2fx -> %.2fx (-%.0f%%)\n" was
            now
            (100. *. (1. -. (now /. was)));
          exit 1
        end
        else
          Printf.printf "no shard regression beyond %.0f%% against %s\n"
            (100. *. max_regression) path
    end
    else if durable then begin
      let module Dbench = Hdd_storage.Dbench in
      let out = Option.value out ~default:"BENCH_durable.json" in
      let report = Dbench.run ~quick () in
      J.to_file out report;
      Printf.printf "wrote %s\n" out;
      let num keys = num report keys in
      Printf.printf
        "group commit: fsync reduction at batch=8: %.1fx; recovery tail \
         flatness: %.2f\n"
        (num [ "group_commit"; "fsync_reduction_at_8" ])
        (num [ "recovery"; "recovery_tail_flatness" ]);
      (match J.path [ "group_commit"; "grid" ] report with
      | Some (J.List cells) ->
        List.iter
          (fun c ->
            let n keys =
              match Option.bind (J.path keys c) J.number with
              | Some f -> f
              | None -> nan
            in
            Printf.printf
              "  batch=%2.0f delay=%2.0f: %8.0f txns/sec, %.3f \
               fsyncs/commit, ack p50 %.0fus p99 %.0fus\n"
              (n [ "max_batch" ]) (n [ "max_delay" ])
              (n [ "txns_per_sec" ])
              (n [ "fsyncs_per_commit" ])
              (n [ "ack_p50_us" ]) (n [ "ack_p99_us" ]))
          cells
      | _ -> ());
      (match Dbench.gates report with
      | [] -> ()
      | problems ->
        List.iter (fun p -> Printf.printf "DURABLE GATE FAILED: %s\n" p) problems;
        exit 1);
      match baseline with
      | None -> ()
      | Some path ->
        let base = J.of_file path in
        let cell_throughput doc b d =
          match J.path [ "group_commit"; "grid" ] doc with
          | Some (J.List cells) ->
            List.find_map
              (fun c ->
                let n keys = Option.bind (J.path keys c) J.number in
                match (n [ "max_batch" ], n [ "max_delay" ]) with
                | Some b', Some d'
                  when int_of_float b' = b && int_of_float d' = d ->
                  n [ "txns_per_sec" ]
                | _ -> None)
              cells
          | _ -> None
        in
        let regressions =
          List.filter_map
            (fun (b, d) ->
              match
                (cell_throughput base b d, cell_throughput report b d)
              with
              | Some was, Some now
                when now < was *. (1. -. max_regression) ->
                Some (Printf.sprintf "batch=%d delay=%d" b d, was, now)
              | _ -> None)
            [ (0, 0); (8, 16); (32, 64) ]
        in
        (match regressions with
        | [] ->
          Printf.printf "no durable regression beyond %.0f%% against %s\n"
            (100. *. max_regression) path
        | rs ->
          List.iter
            (fun (metric, was, now) ->
              Printf.printf "REGRESSION %s: %.0f -> %.0f txns/sec (-%.0f%%)\n"
                metric was now
                (100. *. (1. -. (now /. was))))
            rs;
          exit 1)
    end
    else if parallel then begin
      let module Pb = Hdd_runtime.Parbench in
      let out = Option.value out ~default:"BENCH_parallel.json" in
      let seconds = if quick then 0.2 else 1.0 in
      let ksweep = if quick then [ 1; 16 ] else [ 1; 4; 16; 64 ] in
      let r =
        Pb.run ?workers_list:workers ?publish_every ~ksweep ~seconds ()
      in
      J.to_file out (Pb.to_json r);
      Printf.printf "wrote %s\n" out;
      Format.printf "%a@?" Pb.pp r;
      (match Pb.gates r with
      | [] -> ()
      | problems ->
        List.iter
          (fun p -> Printf.printf "PARALLEL GATE FAILED: %s\n" p)
          problems;
        exit 1);
      match baseline with
      | None -> ()
      | Some path ->
        let base = J.of_file path in
        let fail = ref false in
        let gate name was now =
          if was > 0. && now < was *. (1. -. max_regression) then begin
            Printf.printf "REGRESSION %s: %.0f -> %.0f (-%.0f%%)\n" name
              was now
              (100. *. (1. -. (now /. was)));
            fail := true
          end
        in
        (* per-worker-count A-read rates, matched by workers *)
        let base_rate w =
          match J.path [ "points" ] base with
          | Some (J.List pts) ->
            List.find_map
              (fun p ->
                match
                  (Option.bind (J.path [ "workers" ] p) J.number,
                   Option.bind (J.path [ "reads_a_per_s" ] p) J.number)
                with
                | Some bw, Some rate when int_of_float bw = w -> Some rate
                | _ -> None)
              pts
          | _ -> None
        in
        List.iter
          (fun pt ->
            match base_rate pt.Pb.b_workers with
            | Some was ->
              gate
                (Printf.sprintf "reads_a_per_s at %d workers"
                   pt.Pb.b_workers)
                was pt.Pb.b_reads_a_per_s
            | None -> ())
          r.Pb.r_points;
        (match
           ( Option.bind
               (J.path [ "cross_read_scaling_1_to_8" ] base)
               J.number,
             r.Pb.r_scaling_1_to_8 )
         with
        | Some was, Some now ->
          if was > 0. && now < was *. (1. -. max_regression) then begin
            Printf.printf
              "REGRESSION cross_read_scaling_1_to_8: %.2fx -> %.2fx\n" was
              now;
            fail := true
          end
        | _ -> ());
        if !fail then exit 1
        else
          Printf.printf "no parallel regression beyond %.0f%% against %s\n"
            (100. *. max_regression) path
    end
    else
    let out = Option.value out ~default:"BENCH_hot_paths.json" in
    match obs_gate with
    | Some limit ->
      let r = Macro.obs_overhead ~quick () in
      J.to_file out r;
      let v keys = num r keys in
      let overhead = v [ "disabled_overhead_frac" ] in
      Printf.printf
        "observability off: %.0f txns/sec, compiled-in disabled: %.0f \
         txns/sec (overhead %.2f%%, limit %.2f%%), fully on: %.0f \
         txns/sec (overhead %.2f%%, ungated)\n"
        (v [ "off_txns_per_sec" ])
        (v [ "disabled_txns_per_sec" ])
        (100. *. overhead) (100. *. limit)
        (v [ "on_txns_per_sec" ])
        (100. *. v [ "overhead_frac" ]);
      if overhead > limit then begin
        Printf.printf "OBSERVABILITY OVERHEAD GATE FAILED\n";
        exit 1
      end
    | None ->
    let report = Macro.run ~quick () in
    J.to_file out report;
    Printf.printf "wrote %s\n" out;
    Printf.printf "cross-class read: %.0f -> %.0f ops/sec (%.1fx)\n"
      (num report [ "hot_paths"; "cross_class_read"; "before_ops_per_sec" ])
      (num report [ "hot_paths"; "cross_class_read"; "after_ops_per_sec" ])
      (num report [ "hot_paths"; "cross_class_read"; "speedup" ]);
    List.iter
      (fun path ->
        Printf.printf "%-26s %.1fx\n"
          (String.concat "." path)
          (num report (path @ [ "speedup" ])))
      [ [ "hot_paths"; "registry_i_old" ];
        [ "hot_paths"; "partition_critical_path" ];
        [ "hot_paths"; "activity_links" ];
        [ "hot_paths"; "chain_lookup" ] ];
    Printf.printf "macro: %.0f ops/sec, %.0f txns/sec (A p99 %.1fus, B \
                   p99 %.1fus, C p99 %.1fus)\n"
      (num report [ "macro"; "ops_per_sec" ])
      (num report [ "macro"; "txns_per_sec" ])
      (num report [ "macro"; "protocol_A"; "p99_us" ])
      (num report [ "macro"; "protocol_B"; "p99_us" ])
      (num report [ "macro"; "protocol_C"; "p99_us" ]);
    match baseline with
    | None -> ()
    | Some path -> (
      let base = J.of_file path in
      match Macro.regressions ~baseline:base ~current:report ~max_regression with
      | [] ->
        Printf.printf "no regression beyond %.0f%% against %s\n"
          (100. *. max_regression) path
      | rs ->
        List.iter
          (fun (metric, b, c) ->
            Printf.printf "REGRESSION %s: %.0f -> %.0f (-%.0f%%)\n" metric b
              c
              (100. *. (1. -. (c /. b))))
          rs;
        exit 1)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the hot-path macro-benchmark, write BENCH_hot_paths.json, \
             and optionally gate against a committed baseline")
    Term.(
      const run $ quick $ out $ baseline $ max_regression $ obs_gate
      $ parallel $ durable $ adapt $ shard $ workers $ publish_every
      $ hybrid)

let trace_cmd =
  let module Obs_export = Hdd_benchkit.Obs_export in
  let module J = Hdd_benchkit.Jsonlite in
  let module Trace = Hdd_obs.Trace in
  let module Monitor = Hdd_obs.Monitor in
  let workload, commits, mpl, seed = sim_args in
  let protocol =
    Arg.(value & opt string "HDD" & info [ "p"; "protocol" ] ~docv:"P"
           ~doc:"Protocol to trace (only HDD emits events; baselines \
                 produce an empty trace).")
  in
  let out =
    Arg.(value & opt string "hdd_trace.json" & info [ "o"; "out" ]
           ~docv:"FILE" ~doc:"Where to write the Chrome trace-event JSON \
                              (load in chrome://tracing or Perfetto).")
  in
  let capacity =
    Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"N"
           ~doc:"Trace ring capacity; the oldest records beyond it are \
                 dropped.")
  in
  let run wname commits mpl seed pname out capacity =
    let wl = workload_of_name wname in
    let spec = spec_of_name pname in
    let config = config_of ~commits ~mpl ~seed in
    let result, trace, metrics, monitor =
      Harness.traced_run ~config ~capacity spec wl
    in
    print_results [ result ];
    J.to_file out (Obs_export.chrome_trace trace);
    Printf.printf "wrote %s (%d events emitted, %d dropped)\n" out
      (Trace.emitted trace) (Trace.dropped trace);
    print_endline "metrics:";
    List.iter
      (fun (name, snap) ->
        match snap with
        | Hdd_obs.Metrics.Counter n -> Printf.printf "  %-28s %d\n" name n
        | Hdd_obs.Metrics.Gauge g -> Printf.printf "  %-28s %g\n" name g
        | Hdd_obs.Metrics.Histogram { count; sum; _ } ->
          Printf.printf "  %-28s count %d sum %g\n" name count sum)
      (Hdd_obs.Metrics.snapshot metrics);
    match Monitor.violations monitor with
    | [] ->
      Printf.printf "monitors: ok (%d events checked)\n"
        (Monitor.events_seen monitor)
    | vs ->
      List.iter (fun v -> Printf.printf "MONITOR VIOLATION: %s\n" v) vs;
      exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one workload with full observability on: write a Chrome \
             trace-event JSON, print the metrics registry, and verify the \
             runtime invariant monitors stayed green")
    Term.(const run $ workload $ commits $ mpl $ seed $ protocol $ out
          $ capacity)

let shard_cmd =
  let module Sh = Hdd_shard in
  let module D = Hdd_runtime.Differential in
  let module J = Hdd_benchkit.Jsonlite in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N"
           ~doc:"Number of shards; segments are partitioned round-robin \
                 across them.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED"
           ~doc:"Draws the hierarchy (even seeds a chain, odd a tree), \
                 the script, and the deterministic interleaving.")
  in
  let txns =
    Arg.(value & opt int 40 & info [ "txns" ] ~docv:"N"
           ~doc:"Transactions in the generated script.")
  in
  let profile =
    Arg.(value
         & opt
             (enum
                [ ("mixed", D.Mixed); ("abort-heavy", D.Abort_heavy);
                  ("adhoc-read", D.Adhoc_read) ])
             D.Mixed
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Workload mix: $(b,mixed), $(b,abort-heavy) (~40% \
                   aborts), or $(b,adhoc-read) (~50% read-only \
                   transactions over arbitrary segments).")
  in
  let processes =
    Arg.(value & flag & info [ "processes" ]
           ~doc:"Fork one OS process per shard connected by real pipes \
                 instead of the deterministic in-process scheduler.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the merged cluster trace as Chrome trace-event \
                 JSON (load in chrome://tracing or Perfetto).")
  in
  let run shards seed txns profile processes trace_out =
    let partition, script = Sh.Shard_diff.stress_case ~seed ~txns ~profile in
    let init = D.default_init in
    let run =
      if processes then
        Sh.Cluster.run_script_processes ~partition ~init ~shards ~script ()
      else
        Sh.Cluster.run_script_det ~partition ~init ~shards ~seed ~script ()
    in
    let report = D.check_run ~partition ~init ~script run in
    (match trace_out with
    | None -> ()
    | Some file ->
      J.to_file file
        (Hdd_benchkit.Obs_export.chrome_trace_of_records
           run.Hdd_runtime.Engine.records);
      Printf.printf "wrote %s\n" file);
    Format.printf "%d shards (%s), seed %d: %a@." shards
      (if processes then "processes" else "deterministic")
      seed D.pp_report report;
    if not (D.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Run a seeded stress script on a multi-shard cluster and \
             apply the cross-shard differential oracle: merge the \
             per-shard traces on the global clock, MVSG-certify, replay \
             the invariant monitors, and compare verdicts and \
             Protocol-B read-from sets against the serial oracle")
    Term.(
      const run $ shards $ seed $ txns $ profile $ processes $ trace_out)

let adapt_cmd =
  let module D = Hdd_runtime.Differential in
  let module Drift = Hdd_adapt.Drift in
  let module Advise = Hdd_adapt.Advise in
  let module Scenario = Hdd_adapt.Scenario in
  let module Monitor = Hdd_obs.Monitor in
  let module Trace = Hdd_obs.Trace in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED"
           ~doc:"Draws the hierarchy, the script and the interleaving.")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains for the live-migration oracle run.")
  in
  let txns =
    Arg.(value & opt int 80 & info [ "txns" ] ~docv:"N"
           ~doc:"Transactions in the generated script.")
  in
  let repartitions =
    Arg.(value & opt int 3 & info [ "repartitions" ] ~docv:"N"
           ~doc:"Live whole-map ownership rotations injected while the \
                 run is in flight, each behind a park barrier.")
  in
  let profile =
    Arg.(value
         & opt
             (enum
                [ ("mixed", D.Mixed); ("abort-heavy", D.Abort_heavy);
                  ("adhoc-read", D.Adhoc_read) ])
             D.Mixed
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Workload mix of the generated script.")
  in
  let scenario =
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Instead of the oracle run, drive a curated drift \
                 scenario through the detect/advise/execute pipeline \
                 ($(b,hotspot_migration), $(b,class_split), or \
                 $(b,all)) and replay its trace through the invariant \
                 monitors.")
  in
  let run_scenarios which =
    let picked =
      if which = "all" then Scenario.goldens
      else
        match
          List.find_opt
            (fun gl -> gl.Scenario.g_name = which)
            Scenario.goldens
        with
        | Some gl -> [ gl ]
        | None ->
          failwith
            ("unknown scenario: " ^ which
           ^ " (try hotspot_migration, class_split, all)")
    in
    let failed = ref false in
    List.iter
      (fun gl ->
        let records = Scenario.golden_records gl in
        Printf.printf "%s: %s\n" gl.Scenario.g_name gl.Scenario.g_what;
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.ev with
            | Trace.Repartition _ ->
              Format.printf "  %a@." Trace.pp_event r.Trace.ev
            | _ -> ())
          records;
        let m =
          Monitor.create ~raise_on_violation:false ~wall_rule:`Any_released ()
        in
        List.iter (Monitor.feed m) records;
        (match Monitor.violations m with
        | [] ->
          Printf.printf "  monitors: ok (%d records, epoch %d)\n"
            (List.length records) (Monitor.last_epoch m)
        | vs ->
          failed := true;
          List.iter (fun v -> Printf.printf "  MONITOR VIOLATION: %s\n" v) vs))
      picked;
    if !failed then exit 1
  in
  let run seed workers txns repartitions profile scenario =
    match scenario with
    | Some which -> run_scenarios which
    | None ->
      let r = D.stress_one ~repartitions ~seed ~workers ~txns ~profile () in
      Format.printf "%d workers, seed %d, %d planned rotations: %a@." workers
        seed repartitions D.pp_report r;
      if not (D.ok r) then exit 1;
      if repartitions > 0 && r.D.r_repartitions = 0 then begin
        Printf.printf
          "no rotation was applied (script too short for a barrier)\n";
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:"Exercise online dynamic decomposition: run a seeded script \
             on the multicore engine with live ownership rotations \
             behind park barriers and apply the four-check differential \
             oracle, or drive the curated drift scenarios through the \
             detect/advise/execute pipeline (DESIGN.md §17)")
    Term.(
      const run $ seed $ workers $ txns $ repartitions $ profile $ scenario)

let hybrid_cmd =
  let module D = Hdd_runtime.Differential in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED"
           ~doc:"Draws the hierarchy, the script and the interleaving; \
                 with $(b,--seeds) it is the first of the range.")
  in
  let seeds =
    Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N"
           ~doc:"Consecutive seeds to run (the nightly deep loop passes \
                 hundreds).")
  in
  let workers =
    Arg.(value & opt (list int) [ 2; 4; 8 ] & info [ "workers" ]
           ~docv:"W,W,..."
           ~doc:"Worker-domain counts; the oracle runs once per count.")
  in
  let txns =
    Arg.(value & opt int 80 & info [ "txns" ] ~docv:"N"
           ~doc:"Transactions in the generated script.")
  in
  let escalations =
    Arg.(value & opt int 3 & info [ "escalations" ] ~docv:"N"
           ~doc:"Live CC mode flips injected while the run is in \
                 flight, each behind a park barrier; the last flip \
                 returns every class to plain mode.")
  in
  let profile =
    Arg.(value
         & opt
             (enum
                [ ("mixed", D.Mixed); ("abort-heavy", D.Abort_heavy);
                  ("adhoc-read", D.Adhoc_read) ])
             D.Mixed
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Workload mix of the generated script.")
  in
  let run seed seeds workers txns escalations profile =
    let failed = ref 0 in
    let flips_applied = ref 0 in
    for s = seed to seed + seeds - 1 do
      List.iter
        (fun w ->
          let r =
            D.stress_one ~escalations ~seed:s ~workers:w ~txns ~profile ()
          in
          flips_applied := !flips_applied + r.D.r_escalations;
          if not (D.ok r) then begin
            incr failed;
            Format.printf "FAIL seed %d workers %d: %a@." s w D.pp_report r
          end)
        workers
    done;
    Printf.printf "%d seeds x %d worker counts: %d failures, %d flips \
                   applied\n"
      seeds (List.length workers) !failed !flips_applied;
    if !failed > 0 then exit 1;
    if escalations > 0 && !flips_applied = 0 then begin
      Printf.printf "no mode flip was ever applied\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "hybrid"
       ~doc:"Exercise adaptive hybrid CC on the multicore engine: seeded \
             scripts with live per-class mode flips (plain HDD <-> \
             commit-stamped) behind park barriers, each run checked by \
             the four-check differential oracle (DESIGN.md §18)")
    Term.(
      const run $ seed $ seeds $ workers $ txns $ escalations $ profile)

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (E1..E13); all when omitted.")
  in
  let run ids =
    let outcomes =
      match ids with
      | [] -> Experiment.run_all ()
      | ids -> List.map Experiment.run ids
    in
    List.iter Experiment.print outcomes;
    let failed = List.filter (fun o -> not (Experiment.passed o)) outcomes in
    Printf.printf "\n%d/%d experiments passed\n"
      (List.length outcomes - List.length failed)
      (List.length outcomes);
    if failed <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run the paper-reproduction experiments (DESIGN.md §4)")
    Term.(const run $ ids)

let () =
  let doc = "Hierarchical Database Decomposition (Hsu, 1982) — tools" in
  let info = Cmd.info "hdd_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
                    [ validate_cmd; legalize_cmd; decompose_cmd; dot_cmd;
                      simulate_cmd; compare_cmd; recover_cmd; torture_cmd;
                      explore_cmd; bench_cmd; trace_cmd; shard_cmd;
                      adapt_cmd; hybrid_cmd; experiments_cmd ]))
